//! Encode-once wire codec for the distributed data path.
//!
//! The simulator never pushes real bytes through sockets, but the
//! bandwidth/latency model and the NWS transfer forecasts are only as
//! honest as [`GridMsg::size_bytes`](crate::msg::GridMsg::size_bytes).
//! This module gives the two bulk payloads — share batches and
//! subproblem specs — a concrete binary layout so message sizes are the
//! *actual* encoded length, and so a share batch is serialized exactly
//! once per drain no matter how wide the fan-out is.
//!
//! ## Layout
//!
//! Everything is LEB128 varints. A clause is
//!
//! ```text
//! varint(len) · zigzag(code₀) · zigzag(code₁ − code₀) · …
//! ```
//!
//! i.e. first literal code absolute, the rest delta-coded against the
//! previous literal. Share batches canonicalize each clause (sorted,
//! deduplicated literal codes) before encoding, so deltas are small and
//! positive and the receiver can recompute the clause
//! [fingerprint](Clause::fingerprint) from the decoded literals — the
//! 8-byte fingerprints never travel on the wire. Subproblem specs keep
//! their literal order (the zigzag handles negative deltas), so
//! encode→decode is the identity.
//!
//! A share batch is `varint(count)` followed by the clauses; a
//! [`SplitSpec`] is
//!
//! ```text
//! varint(num_vars) · varint(#assumptions) · varint(code≪1 | global)* ·
//! varint(#clauses) · clause*
//! ```
//!
//! [`spec_wire_bytes`] computes a spec's encoded length without
//! materializing the buffer; it replaces the old hand-waved
//! `approx_message_bytes` cost model in the message layer.
//!
//! ## Framing
//!
//! Both bulk payloads travel inside a versioned, checksummed frame:
//!
//! ```text
//! 'G' 'S' · version(1 byte) · payload_len(u32 LE) · crc32(u32 LE) · payload
//! ```
//!
//! The chaos harness flips payload bits in flight
//! ([`NetChaos::corrupt_prob`](gridsat_grid::NetChaos)), so every decode
//! path verifies the CRC before touching the payload and returns a typed
//! [`WireError`] on any mangled, truncated or over-length input — no
//! decoder in this module can panic on external bytes.

use gridsat_cnf::{Clause, Lit};
use gridsat_solver::SplitSpec;
use std::fmt;

/// Decoding failure on a wire payload: line noise (the chaos harness
/// corrupts frames in flight), truncation, or an encoder/decoder
/// mismatch. Every variant is recoverable — the receiver counts the
/// frame as dropped and relies on retransmission or periodic re-send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended mid-value.
    Truncated,
    /// A varint exceeded 64 bits or a literal code exceeded the
    /// representable range.
    Overflow,
    /// Frame did not start with the `GS` magic bytes.
    BadMagic,
    /// Frame version is newer than this decoder understands.
    BadVersion(u8),
    /// Payload bytes did not hash to the frame's CRC32.
    Checksum,
    /// The buffer carries more bytes than the frame header declares.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire payload truncated"),
            WireError::Overflow => write!(f, "wire varint overflow"),
            WireError::BadMagic => write!(f, "frame magic mismatch"),
            WireError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            WireError::Checksum => write!(f, "frame checksum mismatch"),
            WireError::TrailingBytes => write!(f, "bytes beyond the framed payload"),
        }
    }
}

impl std::error::Error for WireError {}

// ----------------------------------------------------------------------
// CRC32 (IEEE, reflected) — hand-rolled: the build environment has no
// crates.io access, so the checksum ships with the codec.
// ----------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3 polynomial, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// ----------------------------------------------------------------------
// Frame header
// ----------------------------------------------------------------------

const FRAME_MAGIC: [u8; 2] = *b"GS";

/// Current frame version. Decoders accept this version only; a bumped
/// version is a protocol change and must stay backwards-readable by
/// matching on the version byte here.
pub const FRAME_VERSION: u8 = 1;

/// Bytes of the frame header preceding the payload.
pub const FRAME_HEADER_BYTES: usize = 11;

/// Wrap `payload` in a versioned, checksummed frame.
pub fn seal_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verify a frame and return its payload. Rejects short buffers, wrong
/// magic, unknown versions, length mismatches in either direction, and
/// any payload whose CRC32 does not match the header.
pub fn open_frame(buf: &[u8]) -> Result<&[u8], WireError> {
    let header = buf.get(..FRAME_HEADER_BYTES).ok_or(WireError::Truncated)?;
    if header[..2] != FRAME_MAGIC {
        return Err(WireError::BadMagic);
    }
    if header[2] != FRAME_VERSION {
        return Err(WireError::BadVersion(header[2]));
    }
    let len = u32::from_le_bytes([header[3], header[4], header[5], header[6]]) as usize;
    let want = u32::from_le_bytes([header[7], header[8], header[9], header[10]]);
    let payload = &buf[FRAME_HEADER_BYTES..];
    match payload.len() {
        n if n < len => return Err(WireError::Truncated),
        n if n > len => return Err(WireError::TrailingBytes),
        _ => {}
    }
    if crc32(payload) != want {
        return Err(WireError::Checksum);
    }
    Ok(payload)
}

// ----------------------------------------------------------------------
// Varint primitives
// ----------------------------------------------------------------------

pub(crate) fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

pub(crate) fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(WireError::Truncated)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(WireError::Overflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::Overflow);
        }
    }
}

/// Encoded length of `v` as a varint, without encoding it.
pub(crate) fn varint_len(v: u64) -> usize {
    // ceil(bits/7) where bits = 64 - leading_zeros, at least one byte
    ((70 - (v | 1).leading_zeros()) / 7) as usize
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ----------------------------------------------------------------------
// Clause codec
// ----------------------------------------------------------------------

/// Encode literal codes in the given order (first absolute, rest
/// delta-coded). Callers canonicalize when they want canonical form.
pub(crate) fn encode_codes(codes: &[u32], out: &mut Vec<u8>) {
    write_varint(codes.len() as u64, out);
    let mut prev = 0i64;
    for (i, &c) in codes.iter().enumerate() {
        let code = i64::from(c);
        let d = if i == 0 { code } else { code - prev };
        write_varint(zigzag(d), out);
        prev = code;
    }
}

pub(crate) fn clause_wire_len(clause: &Clause) -> usize {
    let mut n = varint_len(clause.len() as u64);
    let mut prev = 0i64;
    for (i, l) in clause.iter().enumerate() {
        let code = l.code() as i64;
        let d = if i == 0 { code } else { code - prev };
        n += varint_len(zigzag(d));
        prev = code;
    }
    n
}

pub(crate) fn decode_clause(buf: &[u8], pos: &mut usize) -> Result<Clause, WireError> {
    let len = read_varint(buf, pos)?;
    if len > buf.len() as u64 {
        // each literal takes ≥ 1 byte; an impossible count means garbage
        return Err(WireError::Truncated);
    }
    let mut lits = Vec::with_capacity(len as usize);
    let mut prev = 0i64;
    for i in 0..len {
        let d = unzigzag(read_varint(buf, pos)?);
        let code = if i == 0 { d } else { prev + d };
        if !(0..=i64::from(u32::MAX)).contains(&code) {
            return Err(WireError::Overflow);
        }
        lits.push(Lit::from_code(code as usize));
        prev = code;
    }
    Ok(Clause::new(lits))
}

// ----------------------------------------------------------------------
// Share batches
// ----------------------------------------------------------------------

/// A share batch serialized once at drain time and fanned out by
/// `Arc` — every peer's message references the same buffer.
///
/// Clauses are stored canonicalized (sorted, deduplicated literal
/// codes); the per-clause fingerprints ride alongside in memory for the
/// sender's dedup filter but are *not* part of the wire image — the
/// receiver recomputes them from the decoded literals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodedBatch {
    bytes: Vec<u8>,
    fingerprints: Vec<u64>,
}

impl EncodedBatch {
    /// Serialize `(clause, fingerprint)` pairs into one framed buffer.
    pub fn encode(shares: &[(Clause, u64)]) -> EncodedBatch {
        let mut payload = Vec::new();
        write_varint(shares.len() as u64, &mut payload);
        let mut fingerprints = Vec::with_capacity(shares.len());
        for (clause, fp) in shares {
            let mut codes: Vec<u32> = clause.iter().map(|l| l.code() as u32).collect();
            codes.sort_unstable();
            codes.dedup();
            encode_codes(&codes, &mut payload);
            fingerprints.push(*fp);
        }
        EncodedBatch {
            bytes: seal_frame(&payload),
            fingerprints,
        }
    }

    /// Adopt raw wire bytes as a batch, as a receiver (or fuzzer) would:
    /// no fingerprints are known until [`decode`](EncodedBatch::decode)
    /// verifies the frame and recomputes them.
    pub fn from_wire(bytes: Vec<u8>) -> EncodedBatch {
        EncodedBatch {
            bytes,
            fingerprints: Vec::new(),
        }
    }

    /// Decode back into `(clause, fingerprint)` pairs after verifying
    /// the frame checksum. Fingerprints are recomputed from the
    /// canonical decoded literals, so they agree with what
    /// [`encode`](EncodedBatch::encode) was handed as long as the sender
    /// used [`Clause::fingerprint`].
    pub fn decode(&self) -> Result<Vec<(Clause, u64)>, WireError> {
        let buf = open_frame(&self.bytes)?;
        let mut pos = 0usize;
        let count = read_varint(buf, &mut pos)?;
        if count > buf.len() as u64 {
            return Err(WireError::Truncated);
        }
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let clause = decode_clause(buf, &mut pos)?;
            let fp = clause.fingerprint();
            out.push((clause, fp));
        }
        if pos != buf.len() {
            return Err(WireError::TrailingBytes);
        }
        Ok(out)
    }

    /// Cheap integrity check: does the frame header still match the
    /// payload? The reliability layer calls this on receipt to treat a
    /// corrupted batch as a drop without decoding the clauses.
    pub fn intact(&self) -> bool {
        open_frame(&self.bytes).is_ok()
    }

    /// Fault injection: flip one payload/header bit, chosen by `seed`.
    pub fn corrupt_bit(&mut self, seed: u64) {
        flip_bit(&mut self.bytes, seed);
    }

    /// Number of clauses in the batch.
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// `true` iff the batch holds no clauses.
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    /// The sender-side fingerprints, index-aligned with the clauses.
    pub fn fingerprints(&self) -> &[u64] {
        &self.fingerprints
    }

    /// Bytes on the wire: frame header plus encoded payload
    /// (fingerprints are in-memory only).
    pub fn wire_len(&self) -> usize {
        self.bytes.len()
    }
}

/// Flip one pseudo-random bit of `bytes`, chosen by `seed` (splitmix64
/// finalizer, so consecutive engine seeds scatter well).
pub(crate) fn flip_bit(bytes: &mut [u8], seed: u64) {
    if bytes.is_empty() {
        return;
    }
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let bit = z % (bytes.len() as u64 * 8);
    bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
}

// ----------------------------------------------------------------------
// Subproblem specs
// ----------------------------------------------------------------------

/// Serialize a subproblem spec (guiding-path assumptions + level-0
/// units and unsatisfied clauses).
pub fn encode_spec(spec: &SplitSpec) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(spec.num_vars as u64, &mut out);
    write_varint(spec.assumptions.len() as u64, &mut out);
    for &(lit, global) in &spec.assumptions {
        write_varint((lit.code() as u64) << 1 | u64::from(global), &mut out);
    }
    write_varint(spec.clauses.len() as u64, &mut out);
    for clause in &spec.clauses {
        let codes: Vec<u32> = clause.iter().map(|l| l.code() as u32).collect();
        encode_codes(&codes, &mut out);
    }
    out
}

/// Decode a subproblem spec. Inverse of [`encode_spec`]: specs keep
/// their literal order on the wire, so the round-trip is the identity.
pub fn decode_spec(buf: &[u8]) -> Result<SplitSpec, WireError> {
    let mut pos = 0usize;
    let num_vars = read_varint(buf, &mut pos)?;
    let n_asm = read_varint(buf, &mut pos)?;
    if n_asm > buf.len() as u64 {
        return Err(WireError::Truncated);
    }
    let mut assumptions = Vec::with_capacity(n_asm as usize);
    for _ in 0..n_asm {
        let packed = read_varint(buf, &mut pos)?;
        let code = packed >> 1;
        if code > u64::from(u32::MAX) {
            return Err(WireError::Overflow);
        }
        assumptions.push((Lit::from_code(code as usize), packed & 1 == 1));
    }
    let n_clauses = read_varint(buf, &mut pos)?;
    if n_clauses > buf.len() as u64 {
        return Err(WireError::Truncated);
    }
    let mut clauses = Vec::with_capacity(n_clauses as usize);
    for _ in 0..n_clauses {
        clauses.push(decode_clause(buf, &mut pos)?);
    }
    if pos != buf.len() {
        return Err(WireError::TrailingBytes);
    }
    Ok(SplitSpec {
        num_vars: num_vars as usize,
        assumptions,
        clauses,
    })
}

/// A subproblem spec sealed in a checksummed frame — the form `Solve`,
/// `Subproblem` and `Requeue` messages actually carry. Encoding happens
/// once at send; the receiver verifies the CRC and decodes, so a
/// bit-flipped transfer surfaces as a typed error instead of a mangled
/// search space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecFrame {
    bytes: Vec<u8>,
}

impl SpecFrame {
    /// Encode and frame a spec.
    pub fn seal(spec: &SplitSpec) -> SpecFrame {
        SpecFrame {
            bytes: seal_frame(&encode_spec(spec)),
        }
    }

    /// Adopt raw wire bytes (receiver/fuzzer entry).
    pub fn from_wire(bytes: Vec<u8>) -> SpecFrame {
        SpecFrame { bytes }
    }

    /// Verify the frame and decode the spec.
    pub fn open(&self) -> Result<SplitSpec, WireError> {
        decode_spec(open_frame(&self.bytes)?)
    }

    /// Frame-level integrity check without decoding the spec.
    pub fn intact(&self) -> bool {
        open_frame(&self.bytes).is_ok()
    }

    /// Bytes on the wire: frame header plus encoded payload.
    pub fn wire_len(&self) -> usize {
        self.bytes.len()
    }

    /// Fault injection: flip one payload/header bit, chosen by `seed`.
    pub fn corrupt_bit(&mut self, seed: u64) {
        flip_bit(&mut self.bytes, seed);
    }
}

/// Exact [`encode_spec`] output length, computed without allocating the
/// buffer. This is the payload half of the transfer-size model for
/// `Solve` / `Subproblem` / `Requeue` messages and the NWS
/// transfer-time forecasts; [`SpecFrame::wire_len`] adds the frame
/// header.
pub fn spec_wire_bytes(spec: &SplitSpec) -> usize {
    let mut n = varint_len(spec.num_vars as u64);
    n += varint_len(spec.assumptions.len() as u64);
    for &(lit, global) in &spec.assumptions {
        n += varint_len((lit.code() as u64) << 1 | u64::from(global));
    }
    n += varint_len(spec.clauses.len() as u64);
    for clause in &spec.clauses {
        n += clause_wire_len(clause);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* — the codec property tests run in
    /// environments without the `proptest`/`rand` crates, so the random
    /// cases are hand-rolled.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        fn clause(&mut self, max_var: u64, max_len: u64) -> Clause {
            let len = self.below(max_len + 1);
            Clause::new((0..len).map(|_| {
                Lit::new(
                    gridsat_cnf::Var(self.below(max_var) as u32),
                    self.below(2) == 1,
                )
            }))
        }
    }

    fn canonical(c: &Clause) -> Clause {
        let mut codes: Vec<usize> = c.iter().map(|l| l.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        Clause::new(codes.into_iter().map(Lit::from_code))
    }

    #[test]
    fn varint_round_trips_at_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            assert_eq!(buf.len(), varint_len(v), "len model for {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncated_and_overflowing_input_is_rejected() {
        let mut buf = Vec::new();
        write_varint(300, &mut buf);
        let mut pos = 0;
        assert_eq!(read_varint(&buf[..1], &mut pos), Err(WireError::Truncated));
        let eleven = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(read_varint(&eleven, &mut pos), Err(WireError::Overflow));
        // a correctly framed batch whose count field promises more
        // clauses than bytes
        let batch = EncodedBatch::from_wire(seal_frame(&[0x05, 0x02]));
        assert!(batch.decode().is_err());
        // unframed garbage never reaches the clause decoder
        let garbage = EncodedBatch::from_wire(vec![0x05, 0x02]);
        assert_eq!(garbage.decode(), Err(WireError::Truncated));
        assert!(!garbage.intact());
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // standard IEEE test vectors
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn frames_open_cleanly_and_reject_every_mangling() {
        let payload = b"framed payload".to_vec();
        let framed = seal_frame(&payload);
        assert_eq!(framed.len(), FRAME_HEADER_BYTES + payload.len());
        assert_eq!(open_frame(&framed), Ok(&payload[..]));

        // short buffer
        assert_eq!(open_frame(&framed[..5]), Err(WireError::Truncated));
        // wrong magic
        let mut bad = framed.clone();
        bad[0] ^= 0xff;
        assert_eq!(open_frame(&bad), Err(WireError::BadMagic));
        // unknown version
        let mut bad = framed.clone();
        bad[2] = 9;
        assert_eq!(open_frame(&bad), Err(WireError::BadVersion(9)));
        // truncated payload
        assert_eq!(
            open_frame(&framed[..framed.len() - 1]),
            Err(WireError::Truncated)
        );
        // over-length payload
        let mut long = framed.clone();
        long.push(0);
        assert_eq!(open_frame(&long), Err(WireError::TrailingBytes));
        // flipped payload bit
        let mut bad = framed.clone();
        *bad.last_mut().unwrap() ^= 0x10;
        assert_eq!(open_frame(&bad), Err(WireError::Checksum));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let shares: Vec<(Clause, u64)> = (0..4u32)
            .map(|i| {
                let c = Clause::new([Lit::pos(i * 3), Lit::neg(i * 3 + 1)]);
                let fp = c.fingerprint();
                (c, fp)
            })
            .collect();
        let clean = EncodedBatch::encode(&shares);
        assert!(clean.intact());
        // CRC32 detects every single-bit error; header damage trips the
        // magic/version/length checks instead
        for bit in 0..(clean.wire_len() * 8) {
            let mut bad = clean.clone();
            bad.bytes[bit / 8] ^= 1 << (bit % 8);
            assert!(!bad.intact(), "flip of bit {bit} went undetected");
            assert!(bad.decode().is_err());
        }
        // deterministic: the same seed flips the same bit
        let mut a = clean.clone();
        let mut b = clean.clone();
        a.corrupt_bit(42);
        b.corrupt_bit(42);
        assert_eq!(a, b);
        assert!(!a.intact(), "a flipped bit must fail the CRC");
        assert!(a.decode().is_err());
    }

    #[test]
    fn spec_frames_round_trip_and_reject_corruption() {
        let spec = SplitSpec {
            num_vars: 40,
            assumptions: vec![(Lit::pos(3), true), (Lit::neg(7), false)],
            clauses: vec![Clause::new([Lit::pos(1), Lit::neg(2), Lit::pos(9)])],
        };
        let frame = SpecFrame::seal(&spec);
        assert!(frame.intact());
        assert_eq!(
            frame.wire_len(),
            FRAME_HEADER_BYTES + spec_wire_bytes(&spec)
        );
        assert_eq!(frame.open(), Ok(spec));
        let mut bad = frame.clone();
        bad.corrupt_bit(7);
        assert!(bad.open().is_err());
        assert!(SpecFrame::from_wire(vec![1, 2, 3]).open().is_err());
    }

    #[test]
    fn random_batches_round_trip_canonically() {
        let mut rng = Rng(0x1234_5678_9abc_def0);
        for _ in 0..200 {
            let n = rng.below(8) as usize;
            let shares: Vec<(Clause, u64)> = (0..n)
                .map(|_| {
                    let c = rng.clause(5000, 12);
                    let fp = c.fingerprint();
                    (c, fp)
                })
                .collect();
            let batch = EncodedBatch::encode(&shares);
            assert_eq!(batch.len(), n);
            assert_eq!(batch.wire_len(), batch.bytes.len());
            let decoded = batch.decode().expect("round trip");
            assert_eq!(decoded.len(), n);
            for ((orig, fp), (dec, dec_fp)) in shares.iter().zip(&decoded) {
                assert_eq!(*dec, canonical(orig), "canonical clause survives");
                assert_eq!(dec_fp, fp, "receiver recomputes the same fingerprint");
                assert_eq!(dec.fingerprint(), *fp);
            }
            // the in-memory fingerprints match, index-aligned
            assert_eq!(
                batch.fingerprints(),
                shares.iter().map(|(_, f)| *f).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn random_specs_round_trip_identically() {
        let mut rng = Rng(0xfeed_beef_cafe_f00d);
        for _ in 0..200 {
            let n_asm = rng.below(6) as usize;
            let n_cl = rng.below(10) as usize;
            let spec = SplitSpec {
                num_vars: rng.below(100_000) as usize,
                assumptions: (0..n_asm)
                    .map(|_| {
                        (
                            Lit::new(gridsat_cnf::Var(rng.below(5000) as u32), rng.below(2) == 1),
                            rng.below(2) == 1,
                        )
                    })
                    .collect(),
                clauses: (0..n_cl).map(|_| rng.clause(5000, 12)).collect(),
            };
            let bytes = encode_spec(&spec);
            assert_eq!(
                bytes.len(),
                spec_wire_bytes(&spec),
                "size model is exact, not approximate"
            );
            assert_eq!(decode_spec(&bytes), Ok(spec), "identity round trip");
        }
    }

    #[test]
    fn encoded_size_is_monotone_in_clause_count_and_magnitude() {
        // more clauses → strictly more bytes
        let clause = |base: u32| {
            let c = Clause::new((base..base + 3).map(Lit::pos));
            let fp = c.fingerprint();
            (c, fp)
        };
        let mut prev = EncodedBatch::encode(&[]).wire_len();
        for n in 1..20u32 {
            let shares: Vec<_> = (0..n).map(|i| clause(i * 10)).collect();
            let len = EncodedBatch::encode(&shares).wire_len();
            assert!(len > prev, "batch of {n} clauses not larger than {}", n - 1);
            prev = len;
        }
        // larger literal magnitudes → no fewer bytes (first code absolute,
        // deltas unchanged), and eventually strictly more
        let spread = |base: u32| {
            let c = Clause::new([Lit::pos(base), Lit::pos(base + 5), Lit::pos(base + 9)]);
            let fp = c.fingerprint();
            vec![(c, fp)]
        };
        let mut prev = 0usize;
        for base in [0u32, 50, 1_000, 100_000, 10_000_000] {
            let len = EncodedBatch::encode(&spread(base)).wire_len();
            assert!(len >= prev, "magnitude {base} shrank the encoding");
            prev = len;
        }
        assert!(
            EncodedBatch::encode(&spread(10_000_000)).wire_len()
                > EncodedBatch::encode(&spread(0)).wire_len()
        );
        // same shape for specs: monotone in clause count
        let mut spec = SplitSpec {
            num_vars: 100,
            assumptions: vec![(Lit::pos(3), true)],
            clauses: vec![],
        };
        let mut prev = spec_wire_bytes(&spec);
        for i in 0..10u32 {
            spec.clauses
                .push(Clause::new([Lit::pos(i), Lit::neg(i + 1)]));
            let len = spec_wire_bytes(&spec);
            assert!(len > prev);
            prev = len;
        }
    }

    #[test]
    fn share_encoding_beats_the_old_cost_model() {
        // the pre-codec model charged 8 bytes per clause + 4 per literal;
        // short sorted clauses over a realistic variable range should come
        // in well under half of that
        let shares: Vec<(Clause, u64)> = (0..50u32)
            .map(|i| {
                let c = Clause::new([
                    Lit::pos(i * 7 % 400),
                    Lit::neg((i * 13 + 5) % 400),
                    Lit::pos((i * 29 + 11) % 400),
                ]);
                let fp = c.fingerprint();
                (c, fp)
            })
            .collect();
        let old_model: usize = shares.iter().map(|(c, _)| 8 + c.len() * 4).sum();
        let encoded = EncodedBatch::encode(&shares).wire_len();
        assert!(
            encoded * 2 <= old_model,
            "encoded {encoded} vs old model {old_model}"
        );
    }
}
