//! Declarative, seed-deterministic fault plans for chaos runs.
//!
//! A [`FaultPlan`] is data — crash windows, link outages, loss and delay
//! probabilities — compiled onto the engine's admin hooks by
//! [`FaultPlan::apply`]. Because the engine is a deterministic
//! discrete-event simulator and every probabilistic choice is drawn from
//! the plan's seed, a failing (plan, seed, instance) triple replays
//! exactly.
//!
//! The paper's implementation "will not tolerate a machine crash"; these
//! plans exist to prove the reliability extension does, by running them
//! against the sequential solver as a SAT/UNSAT oracle (see the
//! `chaos_soak` binary).

use crate::experiment::GridSim;
use gridsat_grid::{NetChaos, NodeId};
use serde::{Deserialize, Serialize};

/// A node outage: down at `down_at`, back (with a clean restart) at
/// `up_at`, or gone for good when `up_at` is `None`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CrashWindow {
    pub node: u32,
    pub down_at: f64,
    pub up_at: Option<f64>,
}

/// A link outage between two nodes (both directions).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkWindow {
    pub a: u32,
    pub b: u32,
    pub down_at: f64,
    pub up_at: f64,
}

/// Everything that will go wrong during one run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Display name for matrices and failure reports.
    pub name: String,
    pub crashes: Vec<CrashWindow>,
    pub links: Vec<LinkWindow>,
    /// Per-send drop probability (applied to every message kind).
    pub loss_prob: f64,
    /// Per-send probability of a delay spike.
    pub delay_prob: f64,
    /// Extra latency of a delay spike, seconds.
    pub delay_extra_s: f64,
    /// Per-send probability of payload bit flips (scalar-only messages
    /// are dropped instead, modeling header corruption).
    #[serde(default)]
    pub corrupt_prob: f64,
    /// Seed for the loss/delay/corruption draws.
    pub seed: u64,
}

impl FaultPlan {
    /// Compile the plan onto a built simulation. Crash and link windows
    /// naming nodes outside the testbed are skipped, so one plan works
    /// across testbed sizes.
    pub fn apply(&self, sim: &mut GridSim) {
        let n = sim.num_nodes() as u32;
        if self.loss_prob > 0.0 || self.delay_prob > 0.0 || self.corrupt_prob > 0.0 {
            sim.set_net_chaos(NetChaos {
                loss_prob: self.loss_prob,
                delay_prob: self.delay_prob,
                delay_extra_s: self.delay_extra_s,
                corrupt_prob: self.corrupt_prob,
                seed: self.seed,
            });
        }
        for c in &self.crashes {
            if c.node >= n {
                continue;
            }
            sim.schedule_node_down(NodeId(c.node), c.down_at);
            if let Some(up) = c.up_at {
                sim.schedule_node_up(NodeId(c.node), up);
            }
        }
        for l in &self.links {
            if l.a >= n || l.b >= n || l.a == l.b {
                continue;
            }
            sim.schedule_link_down(NodeId(l.a), NodeId(l.b), l.down_at);
            sim.schedule_link_up(NodeId(l.a), NodeId(l.b), l.up_at);
        }
    }

    /// Random message loss plus occasional delay spikes, no outages.
    /// Exercises retransmission, dedup, and undeliverable requeue.
    pub fn drop_happy(seed: u64) -> FaultPlan {
        FaultPlan {
            name: "drop-happy".into(),
            loss_prob: 0.08,
            delay_prob: 0.05,
            delay_extra_s: 2.0,
            seed,
            ..FaultPlan::default()
        }
    }

    /// Links flap up and down early in the run (including the
    /// master-client link), with reordering-inducing delay spikes.
    pub fn flaky_links(seed: u64) -> FaultPlan {
        FaultPlan {
            name: "flaky-links".into(),
            links: vec![
                LinkWindow {
                    a: 0,
                    b: 1,
                    down_at: 4.0,
                    up_at: 12.0,
                },
                LinkWindow {
                    a: 1,
                    b: 2,
                    down_at: 8.0,
                    up_at: 18.0,
                },
                LinkWindow {
                    a: 0,
                    b: 2,
                    down_at: 15.0,
                    up_at: 24.0,
                },
            ],
            delay_prob: 0.1,
            delay_extra_s: 3.0,
            seed,
            ..FaultPlan::default()
        }
    }

    /// One client crashes and restarts; another dies for good later.
    /// Exercises checkpoint recovery and restart re-registration.
    pub fn crash_restart(seed: u64) -> FaultPlan {
        FaultPlan {
            name: "crash-restart".into(),
            crashes: vec![
                CrashWindow {
                    node: 1,
                    down_at: 6.0,
                    up_at: Some(18.0),
                },
                CrashWindow {
                    node: 2,
                    down_at: 25.0,
                    up_at: None,
                },
            ],
            loss_prob: 0.02,
            seed,
            ..FaultPlan::default()
        }
    }

    /// The master itself blinks out briefly. Exercises epoch bumps,
    /// client-side retry of soundness-critical reports, and the lease
    /// grace on master restart.
    pub fn master_blink(seed: u64) -> FaultPlan {
        FaultPlan {
            name: "master-blink".into(),
            crashes: vec![CrashWindow {
                node: 0,
                down_at: 10.0,
                up_at: Some(21.0),
            }],
            loss_prob: 0.02,
            seed,
            ..FaultPlan::default()
        }
    }

    /// The master dies for good mid-search, on a lossy network. Only a
    /// standby promotion ([`GridConfig::failover_hardened`]) can finish
    /// this run; in paper mode it wedges.
    ///
    /// [`GridConfig::failover_hardened`]: crate::config::GridConfig::failover_hardened
    pub fn master_gone(seed: u64) -> FaultPlan {
        FaultPlan {
            name: "master-gone".into(),
            crashes: vec![CrashWindow {
                node: 0,
                down_at: 8.0,
                up_at: None,
            }],
            loss_prob: 0.02,
            seed,
            ..FaultPlan::default()
        }
    }

    /// Bytes arrive mangled, not just late or never: every message kind
    /// sees bit flips, on top of a little loss. Exercises the wire
    /// checksums end to end — corrupted control traffic must be caught
    /// and retransmitted, corrupted shares and journal records discarded
    /// and re-requested, never acted on.
    pub fn bit_rot(seed: u64) -> FaultPlan {
        FaultPlan {
            name: "bit-rot".into(),
            loss_prob: 0.02,
            corrupt_prob: 0.06,
            seed,
            ..FaultPlan::default()
        }
    }

    /// A per-site sub-master blinks out and later a second one dies for
    /// good, on a lossy network. Brokers hold only soft state, so the
    /// hierarchy must degrade gracefully: idle clients fall back to the
    /// root after the broker-retry cooldown, in-flight steals abort or
    /// settle through the root ledger, and the verdict stays exact.
    /// Meant for hierarchical testbeds where nodes 1..=sites are brokers.
    pub fn submaster_loss(seed: u64) -> FaultPlan {
        FaultPlan {
            name: "submaster-loss".into(),
            crashes: vec![
                CrashWindow {
                    node: 1,
                    down_at: 5.0,
                    up_at: Some(20.0),
                },
                CrashWindow {
                    node: 2,
                    down_at: 12.0,
                    up_at: None,
                },
            ],
            loss_prob: 0.02,
            seed,
            ..FaultPlan::default()
        }
    }

    /// The standard sweep roster for soak runs.
    pub fn roster(seed: u64) -> Vec<FaultPlan> {
        vec![
            FaultPlan::drop_happy(seed),
            FaultPlan::flaky_links(seed),
            FaultPlan::crash_restart(seed),
            FaultPlan::master_blink(seed),
            FaultPlan::master_gone(seed),
            FaultPlan::bit_rot(seed),
            FaultPlan::submaster_loss(seed),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GridConfig;
    use crate::experiment::{build_sim, report};
    use crate::master::GridOutcome;
    use gridsat_grid::Testbed;

    fn run_plan(plan: &FaultPlan, seed: u64) -> (GridOutcome, u64, u64) {
        let f = gridsat_satgen::random_ksat::random_ksat(30, 126, 3, seed);
        let config = GridConfig {
            min_split_timeout: 0.2,
            work_quantum_s: 0.1,
            ..GridConfig::chaos_hardened()
        };
        let cap = config.overall_timeout;
        let mut sim = build_sim(&f, Testbed::uniform(4, 1000.0, 3 << 20), config);
        plan.apply(&mut sim);
        sim.run_until(cap + 60.0);
        let r = report(&sim, cap);
        (r.outcome, r.reliable.retransmits, r.sim.messages_delivered)
    }

    #[test]
    fn plans_replay_deterministically() {
        let plan = FaultPlan::drop_happy(7);
        let a = run_plan(&plan, 3);
        let b = run_plan(&plan, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn a_lossy_network_still_reaches_the_right_answer() {
        // several instances: a short run can finish before its first
        // retransmit timer fires, but a handful cannot all do so
        let mut total_retransmits = 0;
        for seed in 0..4 {
            let plan = FaultPlan::drop_happy(11 + seed);
            let f = gridsat_satgen::random_ksat::random_ksat(30, 126, 3, seed);
            let want = gridsat_solver::driver::decide(&f);
            let (outcome, retransmits, _) = run_plan(&plan, seed);
            match (want, outcome) {
                (gridsat_solver::SolveStatus::Sat, GridOutcome::Sat(m)) => {
                    assert!(f.is_satisfied_by(&m));
                }
                (gridsat_solver::SolveStatus::Unsat, GridOutcome::Unsat) => {}
                (want, got) => panic!("seed {seed}: oracle {want:?}, chaos run {got:?}"),
            }
            total_retransmits += retransmits;
        }
        // with 8% loss the runs cannot all have been silent about it
        assert!(total_retransmits > 0, "expected the reliable layer to work");
    }

    #[test]
    fn out_of_range_nodes_are_skipped() {
        let plan = FaultPlan {
            name: "oversized".into(),
            crashes: vec![CrashWindow {
                node: 99,
                down_at: 1.0,
                up_at: None,
            }],
            links: vec![LinkWindow {
                a: 0,
                b: 99,
                down_at: 1.0,
                up_at: 2.0,
            }],
            ..FaultPlan::default()
        };
        let f = gridsat_cnf::paper::fig1_formula();
        let config = GridConfig::chaos_hardened();
        let cap = config.overall_timeout;
        let mut sim = build_sim(&f, Testbed::uniform(3, 1000.0, 3 << 20), config);
        plan.apply(&mut sim);
        sim.run_until(cap + 60.0);
        let r = report(&sim, cap);
        assert!(matches!(r.outcome, GridOutcome::Sat(_)));
    }

    #[test]
    fn roster_covers_the_seven_failure_modes() {
        let plans = FaultPlan::roster(1);
        let names: Vec<&str> = plans.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "drop-happy",
                "flaky-links",
                "crash-restart",
                "master-blink",
                "master-gone",
                "bit-rot",
                "submaster-loss"
            ]
        );
    }

    #[test]
    fn submaster_loss_on_a_hierarchical_testbed_stays_exact() {
        for seed in 0..2 {
            let plan = FaultPlan::submaster_loss(29 + seed);
            let f = gridsat_satgen::random_ksat::random_ksat(30, 126, 3, seed);
            let want = gridsat_solver::driver::decide(&f);
            let config = GridConfig {
                min_split_timeout: 0.2,
                work_quantum_s: 0.1,
                ..GridConfig::chaos_hardened()
            }
            .hierarchical();
            let cap = config.overall_timeout;
            let mut sim = build_sim(&f, Testbed::scaling(4, 2, true), config);
            plan.apply(&mut sim);
            sim.run_until(cap + 60.0);
            let r = report(&sim, cap);
            match (want, r.outcome) {
                (gridsat_solver::SolveStatus::Sat, GridOutcome::Sat(m)) => {
                    assert!(f.is_satisfied_by(&m));
                }
                (gridsat_solver::SolveStatus::Unsat, GridOutcome::Unsat) => {}
                (want, got) => panic!("seed {seed}: oracle {want:?}, submaster-loss run {got:?}"),
            }
        }
    }

    #[test]
    fn a_bit_rotted_network_still_reaches_the_right_answer() {
        for seed in 0..2 {
            let plan = FaultPlan::bit_rot(17 + seed);
            let f = gridsat_satgen::random_ksat::random_ksat(30, 126, 3, seed);
            let want = gridsat_solver::driver::decide(&f);
            let (outcome, _, _) = run_plan(&plan, seed);
            match (want, outcome) {
                (gridsat_solver::SolveStatus::Sat, GridOutcome::Sat(m)) => {
                    assert!(f.is_satisfied_by(&m));
                }
                (gridsat_solver::SolveStatus::Unsat, GridOutcome::Unsat) => {}
                (want, got) => panic!("seed {seed}: oracle {want:?}, bit-rot run {got:?}"),
            }
        }
    }
}
