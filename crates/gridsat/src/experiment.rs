//! End-to-end experiment driver: wire a formula, a testbed and a
//! configuration into the discrete-event engine, run, and report.

use crate::client::{Client, ClientStats};
use crate::config::GridConfig;
use crate::master::{GridOutcome, Master, MasterStats};
use crate::msg::GridMsg;
use gridsat_cnf::Formula;
use gridsat_grid::{Ctx, NodeId, Process, Sim, SimStats, Testbed};
use std::collections::BTreeMap;

/// Either role, so one `Sim` hosts both process kinds.
pub enum GridNode {
    Master(Box<Master>),
    Client(Box<Client>),
}

impl Process for GridNode {
    type Msg = GridMsg;

    fn on_start(&mut self, ctx: &mut Ctx<GridMsg>) {
        match self {
            GridNode::Master(m) => m.on_start(ctx),
            GridNode::Client(c) => c.on_start(ctx),
        }
    }
    fn on_message(&mut self, from: NodeId, msg: GridMsg, ctx: &mut Ctx<GridMsg>) {
        match self {
            GridNode::Master(m) => m.on_message(from, msg, ctx),
            GridNode::Client(c) => c.on_message(from, msg, ctx),
        }
    }
    fn on_tick(&mut self, ctx: &mut Ctx<GridMsg>) {
        match self {
            GridNode::Master(m) => m.on_tick(ctx),
            GridNode::Client(c) => c.on_tick(ctx),
        }
    }
    fn on_node_down(&mut self, node: NodeId, ctx: &mut Ctx<GridMsg>) {
        match self {
            GridNode::Master(m) => m.on_node_down(node, ctx),
            GridNode::Client(c) => c.on_node_down(node, ctx),
        }
    }
}

/// A finished GridSAT run.
#[derive(Debug)]
pub struct GridReport {
    pub outcome: GridOutcome,
    /// Simulated seconds until the outcome was decided (or the cap).
    pub seconds: f64,
    pub master: MasterStats,
    /// Aggregated client counters.
    pub clients: ClientStats,
    pub sim: SimStats,
}

impl GridReport {
    /// Paper-style table cell: time in seconds, or the failure mode.
    pub fn table_cell(&self) -> String {
        match self.outcome {
            GridOutcome::Sat(_) | GridOutcome::Unsat => format!("{:.0}", self.seconds),
            GridOutcome::TimeOut => "TIME_OUT".into(),
            GridOutcome::ClientLost => "CLIENT_LOST".into(),
        }
    }
}

/// Build the simulation for a run (exposed so figures and tests can
/// inspect the sim mid-flight).
pub fn build_sim(formula: &Formula, testbed: Testbed, config: GridConfig) -> Sim<GridNode> {
    let master_id = NodeId(0);
    let speeds: BTreeMap<NodeId, (f64, gridsat_grid::Site)> = testbed
        .hosts
        .iter()
        .enumerate()
        .map(|(i, h)| (NodeId(i as u32), (h.speed, h.site)))
        .collect();
    let formula = formula.clone();
    Sim::new(testbed, move |id| {
        if id == master_id {
            GridNode::Master(Box::new(Master::new(
                formula.clone(),
                config.clone(),
                speeds.clone(),
            )))
        } else {
            GridNode::Client(Box::new(Client::new(master_id, config.clone())))
        }
    })
}

/// Run GridSAT on a formula over a testbed. Deterministic.
pub fn run(formula: &Formula, testbed: Testbed, config: GridConfig) -> GridReport {
    let cap = config.overall_timeout;
    let mut sim = build_sim(formula, testbed, config);
    // slack so the master's timeout tick can fire after the cap
    sim.run_until(cap + 60.0);
    report(&sim, cap)
}

/// Extract the report from a finished (or capped) simulation.
pub fn report(sim: &Sim<GridNode>, cap: f64) -> GridReport {
    let GridNode::Master(master) = sim.process(NodeId(0)) else {
        panic!("node 0 is the master");
    };
    let outcome = master.outcome().cloned().unwrap_or(GridOutcome::TimeOut);
    let seconds = match outcome {
        GridOutcome::TimeOut => cap,
        _ => master.finished_at(),
    };
    let mut clients = ClientStats::default();
    for i in 1..sim_num_nodes(sim) {
        if let GridNode::Client(c) = sim.process(NodeId(i as u32)) {
            let s = c.stats;
            clients.subproblems += s.subproblems;
            clients.splits += s.splits;
            clients.split_requests += s.split_requests;
            clients.share_batches_sent += s.share_batches_sent;
            clients.clauses_received += s.clauses_received;
            clients.work += s.work;
            clients.results += s.results;
            clients.migrations += s.migrations;
            clients.share_limit_changes += s.share_limit_changes;
        }
    }
    GridReport {
        outcome,
        seconds,
        master: master.stats,
        clients,
        sim: sim.stats,
    }
}

fn sim_num_nodes(sim: &Sim<GridNode>) -> usize {
    sim.num_nodes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsat_satgen as satgen;

    fn tb(workers: usize) -> Testbed {
        Testbed::uniform(workers, 1000.0, 3 << 20)
    }

    #[test]
    fn solves_a_tiny_sat_instance() {
        let f = gridsat_cnf::paper::fig1_formula();
        let r = run(&f, tb(3), GridConfig::default());
        match r.outcome {
            GridOutcome::Sat(model) => assert!(f.is_satisfied_by(&model)),
            other => panic!("expected SAT, got {other:?}"),
        }
        assert!(r.seconds < 100.0);
        assert_eq!(r.master.verification_failures, 0);
    }

    #[test]
    fn refutes_a_tiny_unsat_instance() {
        let f = satgen::php::php(5, 4);
        let r = run(&f, tb(3), GridConfig::default());
        assert_eq!(r.outcome, GridOutcome::Unsat);
    }

    #[test]
    fn splits_happen_on_harder_instances() {
        let f = satgen::php::php(9, 8);
        let config = GridConfig {
            min_split_timeout: 0.5, // force early splitting
            work_quantum_s: 0.25,
            ..GridConfig::default()
        };
        let r = run(&f, tb(6), config);
        assert_eq!(r.outcome, GridOutcome::Unsat);
        assert!(r.master.splits > 0, "expected at least one split");
        assert!(r.master.max_active_clients >= 2);
        assert!(r.clients.results >= 2, "both halves report");
    }

    #[test]
    fn deterministic_end_to_end() {
        let f = satgen::php::php(8, 7);
        let config = GridConfig {
            min_split_timeout: 0.5,
            work_quantum_s: 0.25,
            ..GridConfig::default()
        };
        let a = run(&f, tb(4), config.clone());
        let b = run(&f, tb(4), config);
        assert_eq!(a.seconds, b.seconds);
        assert_eq!(a.master.splits, b.master.splits);
        assert_eq!(a.clients.work, b.clients.work);
        assert_eq!(a.sim.messages_delivered, b.sim.messages_delivered);
    }

    #[test]
    fn timeout_gives_unknown() {
        let f = satgen::php::php(9, 8);
        let config = GridConfig {
            overall_timeout: 2.0, // absurdly short
            ..GridConfig::default()
        };
        let r = run(&f, tb(2), config);
        assert_eq!(r.outcome, GridOutcome::TimeOut);
        assert_eq!(r.seconds, 2.0);
    }

    #[test]
    fn clause_sharing_traffic_flows() {
        let f = satgen::php::php(9, 8);
        let config = GridConfig {
            min_split_timeout: 0.5,
            work_quantum_s: 0.25,
            share_len_limit: Some(10),
            ..GridConfig::default()
        };
        let r = run(&f, tb(6), config);
        assert_eq!(r.outcome, GridOutcome::Unsat);
        assert!(r.clients.share_batches_sent > 0);
        assert!(r.clients.clauses_received > 0);
    }

    #[test]
    fn sat_answers_match_sequential_on_random_instances() {
        for seed in 0..8 {
            let f = satgen::random_ksat::random_ksat(30, 126, 3, seed);
            let seq = gridsat_solver::driver::decide(&f);
            let config = GridConfig {
                min_split_timeout: 0.2,
                work_quantum_s: 0.1,
                ..GridConfig::default()
            };
            let r = run(&f, tb(4), config);
            match (seq, r.outcome) {
                (gridsat_solver::SolveStatus::Sat, GridOutcome::Sat(m)) => {
                    assert!(f.is_satisfied_by(&m), "seed {seed}");
                }
                (gridsat_solver::SolveStatus::Unsat, GridOutcome::Unsat) => {}
                (want, got) => panic!("seed {seed}: sequential {want:?}, grid {got:?}"),
            }
        }
    }
}
