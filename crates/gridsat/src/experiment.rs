//! End-to-end experiment driver: wire a formula, a testbed and a
//! configuration into the discrete-event engine, run, and report.

use crate::audit::Audit;
use crate::client::{Client, ClientStats};
use crate::config::GridConfig;
use crate::master::{GridOutcome, Master, MasterStats, MasterTelemetry};
use crate::msg::GridMsg;
use crate::standby::StandbyNode;
use crate::submaster::{SubMaster, SubMasterStats};
use gridsat_cnf::Formula;
use gridsat_grid::{
    Ctx, NodeId, Process, Reliable, ReliableConfig, ReliableProcess, ReliableStats, RunEnd, Sim,
    SimStats, Testbed,
};
use gridsat_obs::{MetricsRegistry, Obs};
use std::collections::BTreeMap;

/// Any role, so one `Sim` hosts all process kinds.
pub enum GridNode {
    Master(Box<Master>),
    Client(Box<Client>),
    /// A client doubling as the journal-tailing standby master.
    Standby(Box<StandbyNode>),
    /// A per-site sub-master brokering splits locally (hierarchy
    /// extension); pure soft state, holds no search space.
    SubMaster(Box<SubMaster>),
}

impl Process for GridNode {
    type Msg = GridMsg;

    fn on_start(&mut self, ctx: &mut Ctx<GridMsg>) {
        match self {
            GridNode::Master(m) => m.on_start(ctx),
            GridNode::Client(c) => c.on_start(ctx),
            GridNode::Standby(s) => s.on_start(ctx),
            GridNode::SubMaster(b) => b.on_start(ctx),
        }
    }
    fn on_message(&mut self, from: NodeId, msg: GridMsg, ctx: &mut Ctx<GridMsg>) {
        match self {
            GridNode::Master(m) => m.on_message(from, msg, ctx),
            GridNode::Client(c) => c.on_message(from, msg, ctx),
            GridNode::Standby(s) => s.on_message(from, msg, ctx),
            GridNode::SubMaster(b) => b.on_message(from, msg, ctx),
        }
    }
    fn on_tick(&mut self, ctx: &mut Ctx<GridMsg>) {
        match self {
            GridNode::Master(m) => m.on_tick(ctx),
            GridNode::Client(c) => c.on_tick(ctx),
            GridNode::Standby(s) => s.on_tick(ctx),
            GridNode::SubMaster(b) => b.on_tick(ctx),
        }
    }
    fn on_node_down(&mut self, node: NodeId, ctx: &mut Ctx<GridMsg>) {
        match self {
            GridNode::Master(m) => m.on_node_down(node, ctx),
            GridNode::Client(c) => c.on_node_down(node, ctx),
            GridNode::Standby(s) => s.on_node_down(node, ctx),
            GridNode::SubMaster(b) => b.on_node_down(node, ctx),
        }
    }
}

impl ReliableProcess for GridNode {
    fn is_control(msg: &GridMsg) -> bool {
        msg.is_control()
    }

    fn on_undeliverable(&mut self, to: NodeId, msg: GridMsg, ctx: &mut Ctx<GridMsg>) {
        match self {
            GridNode::Master(m) => m.on_undeliverable(to, msg, ctx),
            GridNode::Client(c) => c.on_undeliverable(to, msg, ctx),
            GridNode::Standby(s) => s.on_undeliverable(to, msg, ctx),
            GridNode::SubMaster(b) => b.on_undeliverable(to, msg, ctx),
        }
    }

    fn on_corrupt(&mut self, from: NodeId, _label: &str, ctx: &mut Ctx<GridMsg>) {
        // only the master tracks per-peer corruption (quarantine);
        // clients and the standby rely on the reliable layer's recovery
        if let GridNode::Master(m) = self {
            m.on_corrupt(from, ctx);
        }
    }
}

/// The simulation type for a GridSAT run: every node is wrapped in the
/// reliability layer (a pure passthrough unless
/// [`GridConfig::reliability`] is set).
pub type GridSim = Sim<Reliable<GridNode>>;

/// Map the run-level reliability knobs onto the wire-level wrapper
/// config (the heartbeat/lease knobs live in the master and clients, not
/// on the wire).
fn wire_reliability(config: &GridConfig) -> Option<ReliableConfig> {
    config.reliability.map(|r| ReliableConfig {
        rto_s: r.rto_s,
        rto_bytes_per_s: r.rto_bytes_per_s,
        backoff_cap_s: r.backoff_cap_s,
        max_retries: r.max_retries,
        jitter_frac: r.jitter_frac,
        ..ReliableConfig::default()
    })
}

/// A finished GridSAT run.
#[derive(Debug)]
pub struct GridReport {
    pub outcome: GridOutcome,
    /// Simulated seconds until the outcome was decided (or the cap).
    pub seconds: f64,
    pub master: MasterStats,
    /// Aggregated client counters.
    pub clients: ClientStats,
    /// Aggregated sub-master counters (all zero without the hierarchy
    /// extension).
    pub submasters: SubMasterStats,
    /// Aggregated reliability-layer counters (all zero when the layer is
    /// off or the network was fault-free).
    pub reliable: ReliableStats,
    pub sim: SimStats,
    /// Control-plane latency telemetry (queue depth, per-kind service
    /// times, split-request -> grant waits), merged across the original
    /// master and any promoted standby.
    pub telemetry: MasterTelemetry,
}

impl GridReport {
    /// Paper-style table cell: time in seconds, or the failure mode.
    pub fn table_cell(&self) -> String {
        match &self.outcome {
            GridOutcome::Sat(_) | GridOutcome::Unsat => format!("{:.0}", self.seconds),
            other => other.table_cell(),
        }
    }

    /// Fold every stats struct of the run into one metrics registry,
    /// ready for Prometheus-text or JSON exposition.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("run.seconds", self.seconds);
        self.master.export_metrics(&mut reg, "master");
        self.telemetry.export_metrics(&mut reg, "master");
        self.clients.export_metrics(&mut reg, "client");
        self.submasters.export_metrics(&mut reg, "submaster");
        self.reliable.export_metrics(&mut reg, "reliable");
        self.sim.export_metrics(&mut reg, "sim");
        reg
    }
}

/// Build the simulation for a run (exposed so figures and tests can
/// inspect the sim mid-flight).
pub fn build_sim(formula: &Formula, testbed: Testbed, config: GridConfig) -> GridSim {
    build_sim_obs(formula, testbed, config, Obs::default())
}

/// Like [`build_sim`], but with an event sink threaded into the engine,
/// the master, every client, and every solver the clients spawn.
pub fn build_sim_obs(formula: &Formula, testbed: Testbed, config: GridConfig, obs: Obs) -> GridSim {
    let master_id = NodeId(0);
    let speeds: BTreeMap<NodeId, (f64, gridsat_grid::Site)> = testbed
        .hosts
        .iter()
        .enumerate()
        .map(|(i, h)| (NodeId(i as u32), (h.speed, h.site)))
        .collect();
    let formula = formula.clone();
    let node_obs = obs.clone();
    let wire = wire_reliability(&config);
    let audit = if config.audit {
        Audit::enabled()
    } else {
        Audit::default()
    };
    audit.set_obs(obs.clone());
    let standby_id = config
        .failover
        .map(|fo| NodeId(fo.standby_node))
        .filter(|&id| id != master_id);
    // hierarchy wiring: hosts marked as brokers become per-site
    // sub-masters, and every solver client is pointed at its site's one
    let brokers: std::collections::HashMap<gridsat_grid::Site, NodeId> =
        if config.hierarchy.is_some() {
            testbed
                .hosts
                .iter()
                .enumerate()
                .filter(|(_, h)| h.broker)
                .map(|(i, h)| (h.site, NodeId(i as u32)))
                .collect()
        } else {
            Default::default()
        };
    debug_assert!(
        standby_id.is_none_or(|id| !brokers.values().any(|&b| b == id)),
        "the standby host cannot double as a sub-master"
    );
    let mut sim = Sim::new(testbed, move |id| {
        let node = if id == master_id {
            let mut master = Master::new(formula.clone(), config.clone(), speeds.clone());
            master.set_obs(node_obs.clone());
            master.set_audit(audit.clone());
            GridNode::Master(Box::new(master))
        } else if brokers.values().any(|&b| b == id) {
            let hc = config.hierarchy.expect("brokers imply hierarchy");
            GridNode::SubMaster(Box::new(SubMaster::new(master_id, hc)))
        } else {
            let mut client = Client::new(master_id, config.clone());
            client.set_obs(node_obs.clone());
            client.set_audit(audit.clone());
            if let Some(&broker) = speeds.get(&id).and_then(|(_, site)| brokers.get(site)) {
                client.set_broker(broker);
            }
            if Some(id) == standby_id {
                GridNode::Standby(Box::new(StandbyNode::new(
                    client,
                    formula.clone(),
                    config.clone(),
                    speeds.clone(),
                    node_obs.clone(),
                    audit.clone(),
                )))
            } else {
                GridNode::Client(Box::new(client))
            }
        };
        let mut wrapped = Reliable::new(node, wire).with_rng_salt(u64::from(id.0) + 1);
        wrapped.set_obs(node_obs.clone());
        wrapped
    });
    sim.set_obs(obs);
    sim
}

/// Run GridSAT on a formula over a testbed. Deterministic.
pub fn run(formula: &Formula, testbed: Testbed, config: GridConfig) -> GridReport {
    let cap = config.overall_timeout;
    let mut sim = build_sim(formula, testbed, config);
    // slack so the master's timeout tick can fire after the cap
    sim.run_until(cap + 60.0);
    report(&sim, cap)
}

/// Extract the report from a finished (or capped) simulation.
pub fn report(sim: &GridSim, cap: f64) -> GridReport {
    let GridNode::Master(master) = sim.process(NodeId(0)).inner() else {
        panic!("node 0 is the master");
    };
    let mut master_stats = master.stats;
    let mut telemetry = master.telemetry.clone();
    let mut decided = master.outcome().cloned().map(|o| (o, master.finished_at()));
    let mut clients = ClientStats::default();
    let mut submasters = SubMasterStats::default();
    let mut reliable = ReliableStats::default();
    for i in 0..sim.num_nodes() {
        let wrapper = sim.process(NodeId(i as u32));
        reliable.absorb(&wrapper.stats);
        match wrapper.inner() {
            GridNode::Client(c) => clients.absorb(&c.stats),
            GridNode::SubMaster(b) => submasters.absorb(&b.stats),
            GridNode::Standby(s) => {
                clients.absorb(&s.client().stats);
                // a promoted standby carried the run after node 0 died:
                // fold its scheduling stats in and take its verdict
                if let Some(m) = s.promoted_master() {
                    master_stats.absorb(&m.stats);
                    telemetry.absorb(&m.telemetry);
                    if decided.is_none() {
                        decided = m.outcome().cloned().map(|o| (o, m.finished_at()));
                    }
                }
            }
            GridNode::Master(_) => {}
        }
    }
    let outcome = match decided {
        Some((ref o, _)) => o.clone(),
        // no decision: distinguish "still grinding when the cap hit"
        // from "the event queue drained with work open" (a lost message
        // nobody recovered — the quiescence detector)
        None => match sim.last_run_end() {
            Some(RunEnd::Exhausted) => GridOutcome::Wedged,
            _ => GridOutcome::TimeOut,
        },
    };
    let seconds = match outcome {
        GridOutcome::TimeOut | GridOutcome::Wedged => cap,
        _ => decided.expect("decided outcome has a timestamp").1,
    };
    GridReport {
        outcome,
        seconds,
        master: master_stats,
        clients,
        submasters,
        reliable,
        sim: sim.stats,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsat_satgen as satgen;

    fn tb(workers: usize) -> Testbed {
        Testbed::uniform(workers, 1000.0, 3 << 20)
    }

    #[test]
    fn solves_a_tiny_sat_instance() {
        let f = gridsat_cnf::paper::fig1_formula();
        let r = run(&f, tb(3), GridConfig::default());
        match r.outcome {
            GridOutcome::Sat(model) => assert!(f.is_satisfied_by(&model)),
            other => panic!("expected SAT, got {other:?}"),
        }
        assert!(r.seconds < 100.0);
        assert_eq!(r.master.verification_failures, 0);
    }

    #[test]
    fn traced_run_yields_a_utilization_report_and_metrics() {
        let f = gridsat_cnf::paper::fig1_formula();
        let (obs, ring) = Obs::ring(1 << 16);
        let config = GridConfig::default();
        let cap = config.overall_timeout;
        let mut sim = build_sim_obs(&f, tb(3), config, obs);
        sim.run_until(cap + 60.0);
        let r = report(&sim, cap);
        assert!(matches!(r.outcome, GridOutcome::Sat(_)));

        // the trace round-trips through JSONL and folds into utilization
        let jsonl = ring.lock().unwrap().to_jsonl();
        let events = gridsat_obs::from_jsonl(&jsonl).expect("trace decodes");
        assert!(!events.is_empty());
        let util = gridsat_obs::fold_utilization(&events);
        assert!(util.event_counts.contains_key("client_launch"));
        assert!(util.event_counts.contains_key("assign"));
        assert_eq!(util.event_counts.get("outcome"), Some(&1));
        assert!(util.peak_active >= 1);
        let busy: f64 = util.clients.iter().map(|c| c.busy_s).sum();
        assert!(busy > 0.0, "at least one client did work");

        // the metrics bridge covers all three stats structs
        let reg = r.metrics();
        let prom = reg.render_prometheus();
        assert!(prom.contains("# TYPE master_results counter"));
        assert!(prom.contains("# TYPE client_work"));
        assert!(prom.contains("# TYPE sim_messages_delivered"));
        assert!(prom.contains("# TYPE run_seconds gauge"));
    }

    #[test]
    fn reliability_layer_is_free_without_faults() {
        let f = gridsat_cnf::paper::fig1_formula();
        let bare = run(&f, tb(3), GridConfig::default());
        assert!(matches!(bare.outcome, GridOutcome::Sat(_)));
        // passthrough mode never tracks anything
        assert_eq!(bare.reliable, ReliableStats::default());
        // hardened on a clean network: tracked sends, but no recovery work
        let hardened = run(&f, tb(3), GridConfig::chaos_hardened());
        assert!(matches!(hardened.outcome, GridOutcome::Sat(_)));
        assert!(hardened.reliable.data_sent > 0);
        assert_eq!(hardened.reliable.retransmits, 0);
        assert_eq!(hardened.reliable.dup_drops, 0);
        assert_eq!(hardened.reliable.expired, 0);
        assert_eq!(hardened.master.lease_expiries, 0);
        assert_eq!(hardened.master.requeues, 0);
    }

    #[test]
    fn refutes_a_tiny_unsat_instance() {
        let f = satgen::php::php(5, 4);
        let r = run(&f, tb(3), GridConfig::default());
        assert_eq!(r.outcome, GridOutcome::Unsat);
    }

    #[test]
    fn splits_happen_on_harder_instances() {
        let f = satgen::php::php(9, 8);
        let config = GridConfig {
            min_split_timeout: 0.5, // force early splitting
            work_quantum_s: 0.25,
            ..GridConfig::default()
        };
        let r = run(&f, tb(6), config);
        assert_eq!(r.outcome, GridOutcome::Unsat);
        assert!(r.master.splits > 0, "expected at least one split");
        assert!(r.master.max_active_clients >= 2);
        assert!(r.clients.results >= 2, "both halves report");
    }

    #[test]
    fn hierarchical_run_steals_work_and_matches_the_oracle() {
        let f = satgen::php::php(9, 8);
        let config = GridConfig {
            min_split_timeout: 0.5,
            work_quantum_s: 0.25,
            hierarchy: Some(crate::config::HierarchyConfig {
                steal_period_s: 1.0,
                escalate_period_s: 5.0,
                status_period_s: 30.0,
            }),
            audit: true,
            ..GridConfig::default()
        };
        let r = run(&f, Testbed::scaling(6, 2, true), config);
        assert_eq!(r.outcome, GridOutcome::Unsat);
        assert_eq!(r.master.verification_failures, 0);
        assert!(
            r.master.steals_settled > 0,
            "expected at least one settled steal, stats: settled={} aborted={} tickets={}",
            r.master.steals_settled,
            r.master.steals_aborted,
            r.submasters.tickets,
        );
        assert!(r.submasters.announcements > 0, "idle clients announce");
        // `audit: true` wires the conservation auditor, which panics on any
        // lost or double-assigned cube — reaching this line means it held.
    }

    #[test]
    fn hierarchical_run_is_deterministic() {
        let f = satgen::php::php(8, 7);
        let config = GridConfig {
            min_split_timeout: 0.5,
            work_quantum_s: 0.25,
            ..GridConfig::default()
        }
        .hierarchical();
        let a = run(&f, Testbed::scaling(4, 2, true), config.clone());
        let b = run(&f, Testbed::scaling(4, 2, true), config);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.seconds, b.seconds);
        assert_eq!(a.master.steals_settled, b.master.steals_settled);
        assert_eq!(a.sim.messages_delivered, b.sim.messages_delivered);
    }

    #[test]
    fn deterministic_end_to_end() {
        let f = satgen::php::php(8, 7);
        let config = GridConfig {
            min_split_timeout: 0.5,
            work_quantum_s: 0.25,
            ..GridConfig::default()
        };
        let a = run(&f, tb(4), config.clone());
        let b = run(&f, tb(4), config);
        assert_eq!(a.seconds, b.seconds);
        assert_eq!(a.master.splits, b.master.splits);
        assert_eq!(a.clients.work, b.clients.work);
        assert_eq!(a.sim.messages_delivered, b.sim.messages_delivered);
    }

    #[test]
    fn timeout_gives_unknown() {
        let f = satgen::php::php(9, 8);
        let config = GridConfig {
            overall_timeout: 2.0, // absurdly short
            ..GridConfig::default()
        };
        let r = run(&f, tb(2), config);
        assert_eq!(r.outcome, GridOutcome::TimeOut);
        assert_eq!(r.seconds, 2.0);
    }

    #[test]
    fn clause_sharing_traffic_flows() {
        let f = satgen::php::php(9, 8);
        let config = GridConfig {
            min_split_timeout: 0.5,
            work_quantum_s: 0.25,
            share_len_limit: Some(10),
            ..GridConfig::default()
        };
        let r = run(&f, tb(6), config);
        assert_eq!(r.outcome, GridOutcome::Unsat);
        assert!(r.clients.share_batches_sent > 0);
        assert!(r.clients.clauses_received > 0);
    }

    #[test]
    fn relay_tree_bounds_share_traffic_on_a_wide_grid() {
        // tb(13) is a master plus 13 worker clients: wide enough that
        // the k-ary relay tree and all-pairs flooding behave very
        // differently
        let f = satgen::php::php(9, 8);
        let config = GridConfig {
            min_split_timeout: 0.5,
            work_quantum_s: 0.25,
            share_len_limit: Some(10),
            ..GridConfig::default()
        };
        let branch = config.share_relay_branch.expect("relay on by default");
        let cap = config.overall_timeout;
        let mut sim = build_sim(&f, tb(13), config);
        sim.enable_trace();
        sim.run_until(cap + 60.0);
        let r = report(&sim, cap);
        assert_eq!(r.outcome, GridOutcome::Unsat, "oracle answer first");
        assert!(r.clients.share_batches_sent > 0);
        assert!(r.clients.clauses_received > 0);
        assert!(
            r.clients.shares_forwarded > 0,
            "inner tree nodes must relay batches"
        );

        // sim-level O(n) guarantee: a batch visits each of the n-1 other
        // clients at most once, so total share messages on the wire stay
        // within batches * (n-1) — all-pairs flooding with re-forwarding
        // would blow through this immediately
        let n = 13u64; // clients in tb(13); the roster excludes the master
        let share_sends = sim
            .trace_events()
            .iter()
            .filter(|e| e.label == "share")
            .count() as u64;
        assert!(share_sends > 0);
        assert!(
            share_sends <= r.clients.share_batches_sent * (n - 1),
            "{share_sends} share msgs for {} batches",
            r.clients.share_batches_sent
        );

        // per-node egress: nobody ever sends more than branch-factor
        // share messages at one instant per batch in flight; the
        // all-pairs baseline would burst n-1 = 12 from the origin
        let mut bursts: std::collections::HashMap<(u32, u64), u64> = Default::default();
        for e in sim.trace_events().iter().filter(|e| e.label == "share") {
            *bursts.entry((e.from.0, e.time_s.to_bits())).or_default() += 1;
        }
        let max_burst = bursts.values().copied().max().unwrap_or(0);
        assert!(
            max_burst <= 2 * branch as u64,
            "egress burst {max_burst} exceeds the relay fan-out bound"
        );

        // against the all-pairs ablation: the tree must answer the same
        // and never put more share bytes on the wire
        let flood_config = GridConfig {
            min_split_timeout: 0.5,
            work_quantum_s: 0.25,
            share_len_limit: Some(10),
            share_relay_branch: None,
            ..GridConfig::default()
        };
        let flood = run(&f, tb(13), flood_config);
        assert_eq!(flood.outcome, GridOutcome::Unsat);
        assert!(
            r.clients.share_bytes_sent <= flood.clients.share_bytes_sent,
            "relay tree sent {} share bytes, all-pairs {}",
            r.clients.share_bytes_sent,
            flood.clients.share_bytes_sent
        );
    }

    #[test]
    fn causal_trace_critical_path_covers_a_wide_run() {
        // 13 workers on PHP(9,8) with splits forced early: the same
        // shape as the relay-tree test, but traced with Lamport stamps
        // so the analyzer can walk the causal chain back from the
        // UNSAT verdict.
        let f = satgen::php::php(9, 8);
        let config = GridConfig {
            min_split_timeout: 0.5,
            work_quantum_s: 0.25,
            ..GridConfig::default()
        };
        let cap = config.overall_timeout;
        let (obs, ring) = Obs::causal_ring(1 << 20);
        let mut sim = build_sim_obs(&f, tb(13), config, obs);
        sim.run_until(cap + 60.0);
        let r = report(&sim, cap);
        assert_eq!(r.outcome, GridOutcome::Unsat);

        let ring = ring.lock().unwrap();
        assert_eq!(ring.evicted(), 0, "ring must hold the whole trace");
        let events = ring.events();
        let analysis = gridsat_obs::analyze(&events);
        assert!(
            analysis.anomalies.is_empty(),
            "clean run flagged: {:?}",
            analysis.anomalies
        );

        // the chain exists, ends at the master's verdict, and stays
        // inside the simulated run
        let cp = analysis.critical.expect("causal trace has a path");
        assert_eq!(cp.answer_kind, "outcome");
        assert_eq!(cp.answer_node, 0);
        assert!(cp.end_s <= r.seconds + 1e-6);
        assert!(cp.total_s() > 0.0);

        // segments and the per-kind breakdown both cover the chain's
        // span to within 1% — no unattributed time
        let covered: f64 = cp.segments.iter().map(|s| s.duration_s()).sum();
        let attributed: f64 = cp.breakdown().values().sum();
        let tol = 0.01 * cp.total_s();
        assert!((covered - cp.total_s()).abs() <= tol, "{covered} segment-s");
        assert!((attributed - cp.total_s()).abs() <= tol);
        let solve = cp
            .breakdown()
            .get(&gridsat_obs::SegmentKind::Solve)
            .copied()
            .unwrap_or(0.0);
        assert!(solve > 0.0, "some chain time must be solver work");

        // control-plane telemetry reached the snapshot and the report
        let GridNode::Master(master) = sim.process(NodeId(0)).inner() else {
            panic!("node 0 is the master");
        };
        let snap = master.snapshot();
        assert!(snap.queue_depth_max > 0, "backlog was sampled");
        assert!(snap.split_wait.count > 0, "split waits were observed");
        assert!(snap.split_wait.p99_s >= snap.split_wait.p50_s);
        assert!(snap
            .service
            .iter()
            .any(|(k, s)| k == "split_request" && s.count > 0));
        let sw = r.telemetry.split_wait_summary();
        assert_eq!(sw.count, snap.split_wait.count);
    }

    #[test]
    fn torn_master_journal_recovers_and_reaches_the_oracle_answer() {
        use crate::chaos::{CrashWindow, FaultPlan};
        // the master crashes mid-run; while it is down, the tail of its
        // on-disk journal is torn off at an arbitrary byte boundary (a
        // lost disk append — deeper tears lose whole committed records).
        // The restart must truncate to the verified prefix, observably,
        // and the grid must still converge on the oracle answer.
        let f = satgen::php::php(7, 6); // oracle: UNSAT, runs well past the crash
        for depth in 0..4u64 {
            let config = GridConfig {
                min_split_timeout: 0.2,
                work_quantum_s: 0.1,
                ..GridConfig::chaos_hardened()
            };
            let cap = config.overall_timeout;
            let (obs, ring) = Obs::ring(1 << 16);
            let mut sim = build_sim_obs(&f, tb(4), config, obs);
            FaultPlan {
                name: "torn-journal".into(),
                crashes: vec![CrashWindow {
                    node: 0,
                    down_at: 2.0,
                    up_at: Some(5.0),
                }],
                ..FaultPlan::default()
            }
            .apply(&mut sim);
            sim.run_until(3.0);
            assert!(
                !matches!(sim.last_run_end(), Some(RunEnd::Shutdown)),
                "depth {depth}: the run must still be going at the tear point"
            );
            if let GridNode::Master(m) = sim.process_mut(NodeId(0)).inner_mut() {
                let disk = m.journal_mut();
                let len = disk.log_bytes().len();
                let keep = len.saturating_sub(2 + 11 * depth as usize).max(1);
                assert!(disk.len() > 1, "depth {depth}: journal too short to tear");
                disk.tear_log(keep);
            }
            // check the restart's truncate report right after the node
            // comes back, before a long run cycles it out of the ring
            sim.run_until(6.0);
            assert!(
                ring.lock()
                    .unwrap()
                    .to_jsonl()
                    .contains("\"kind\":\"journal_truncate\""),
                "depth {depth}: the torn tail must be reported on restart"
            );
            sim.run_until(cap + 60.0);
            let r = report(&sim, cap);
            assert!(
                matches!(r.outcome, GridOutcome::Unsat),
                "depth {depth}: oracle UNSAT, torn-journal run {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn sat_answers_match_sequential_on_random_instances() {
        for seed in 0..8 {
            let f = satgen::random_ksat::random_ksat(30, 126, 3, seed);
            let seq = gridsat_solver::driver::decide(&f);
            let config = GridConfig {
                min_split_timeout: 0.2,
                work_quantum_s: 0.1,
                ..GridConfig::default()
            };
            let r = run(&f, tb(4), config);
            match (seq, r.outcome) {
                (gridsat_solver::SolveStatus::Sat, GridOutcome::Sat(m)) => {
                    assert!(f.is_satisfied_by(&m), "seed {seed}");
                }
                (gridsat_solver::SolveStatus::Unsat, GridOutcome::Unsat) => {}
                (want, got) => panic!("seed {seed}: sequential {want:?}, grid {got:?}"),
            }
        }
    }
}
