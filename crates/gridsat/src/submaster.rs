//! Per-site sub-master (hierarchical control plane, scaling extension).
//!
//! A sub-master is a pure matchmaker: idle clients of its site announce
//! themselves ([`GridMsg::StealRequest`]), loaded siblings offer their
//! subproblem for splitting ([`GridMsg::SplitRequest`] routed site-
//! locally instead of to the root), and the sub-master pairs the two
//! with a [`GridMsg::StealTicket`]. The stolen transfer then runs
//! entirely between the two clients; the root master only hears about
//! it through the donor's [`GridMsg::StealNotice`] and the thief's
//! confirmation, which it folds into its journal as steal records.
//!
//! The sub-master holds **no durable state**: its idle set and offer
//! queue are soft, rebuilt from periodic re-announcements and re-arising
//! split requests. Losing a sub-master therefore loses no work — the
//! clients fall back to the root until it returns (the sub-master-loss
//! chaos plan exercises exactly this).
//!
//! When a whole site is saturated (offers but no idle capacity), the
//! sub-master escalates at most one offer per
//! [`HierarchyConfig::escalate_period_s`] to the root
//! ([`GridMsg::SplitEscalate`]), which treats it like a plain split
//! request. The rate limit is the point: the root's queue sees O(sites)
//! control traffic instead of O(clients).

use crate::config::HierarchyConfig;
use crate::msg::{GridMsg, ProblemId};
use gridsat_grid::{Ctx, NodeId, Process};
use gridsat_obs::MetricsRegistry;
use std::collections::{BTreeSet, VecDeque};

/// Counters a sub-master keeps (merged across sites in the report).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubMasterStats {
    /// Steal tickets issued (idle client paired with a loaded donor).
    pub tickets: u64,
    /// Offers escalated to the root for lack of local idle capacity.
    pub escalations: u64,
    /// Split offers received from site clients.
    pub offers: u64,
    /// Idle announcements received.
    pub announcements: u64,
}

impl SubMasterStats {
    pub fn absorb(&mut self, other: &SubMasterStats) {
        let SubMasterStats {
            tickets,
            escalations,
            offers,
            announcements,
        } = *other;
        self.tickets += tickets;
        self.escalations += escalations;
        self.offers += offers;
        self.announcements += announcements;
    }

    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let SubMasterStats {
            tickets,
            escalations,
            offers,
            announcements,
        } = *self;
        reg.counter_add(&format!("{prefix}.tickets"), tickets);
        reg.counter_add(&format!("{prefix}.escalations"), escalations);
        reg.counter_add(&format!("{prefix}.offers"), offers);
        reg.counter_add(&format!("{prefix}.announcements"), announcements);
    }
}

/// The sub-master process for one site.
pub struct SubMaster {
    root: NodeId,
    config: HierarchyConfig,
    /// Clients of this site currently announced idle.
    idle: BTreeSet<NodeId>,
    /// Unmatched split offers: (donor, problem), one per donor.
    offers: VecDeque<(NodeId, ProblemId)>,
    last_escalate: f64,
    /// The root solicited an offer while we had none: the pull stays
    /// pending, and the next saturated offer escalates immediately
    /// instead of waiting out the periodic budget.
    root_wants_work: bool,
    pub stats: SubMasterStats,
}

impl SubMaster {
    pub fn new(root: NodeId, config: HierarchyConfig) -> SubMaster {
        SubMaster {
            root,
            config,
            idle: BTreeSet::new(),
            offers: VecDeque::new(),
            // allow an immediate first escalation
            last_escalate: f64::NEG_INFINITY,
            root_wants_work: false,
            stats: SubMasterStats::default(),
        }
    }

    /// Pair the head offer with `thief` and issue the ticket.
    fn issue_ticket(&mut self, thief: NodeId, ctx: &mut Ctx<GridMsg>) {
        let Some((donor, problem)) = self.offers.pop_front() else {
            return;
        };
        self.stats.tickets += 1;
        ctx.send(thief, GridMsg::StealTicket { donor, problem });
    }
}

impl Process for SubMaster {
    type Msg = GridMsg;

    fn on_start(&mut self, ctx: &mut Ctx<GridMsg>) {
        // soft state only: a restarted sub-master just resumes ticking;
        // clients re-announce and offers re-arise on their own timers
        self.idle.clear();
        self.offers.clear();
        self.root_wants_work = false;
        ctx.schedule_tick(self.config.status_period_s);
    }

    fn on_message(&mut self, from: NodeId, msg: GridMsg, ctx: &mut Ctx<GridMsg>) {
        match msg {
            GridMsg::StealRequest => {
                self.stats.announcements += 1;
                // an idle announcer cannot be a donor any more
                self.offers.retain(|(d, _)| *d != from);
                if !self.offers.is_empty() {
                    self.issue_ticket(from, ctx);
                } else {
                    self.idle.insert(from);
                }
            }
            GridMsg::SplitRequest { problem } => {
                self.stats.offers += 1;
                self.idle.remove(&from); // a donor is certainly busy
                if let Some(slot) = self.offers.iter_mut().find(|(d, _)| *d == from) {
                    slot.1 = problem; // refresh a re-arisen offer
                } else {
                    self.offers.push_back((from, problem));
                }
                if let Some(thief) = self.idle.pop_first() {
                    self.issue_ticket(thief, ctx);
                } else if self.root_wants_work
                    || ctx.now() - self.last_escalate >= self.config.escalate_period_s
                {
                    // site saturated: hand one offer to the root —
                    // immediately if a solicit is pending, otherwise
                    // rate-limited so the root queue scales with sites
                    if !self.root_wants_work {
                        self.last_escalate = ctx.now();
                    }
                    self.root_wants_work = false;
                    self.stats.escalations += 1;
                    ctx.send(
                        self.root,
                        GridMsg::SplitEscalate {
                            requester: from,
                            problem,
                        },
                    );
                }
            }
            GridMsg::OfferSolicit => {
                // the root has idle capacity and nothing backlogged:
                // hand up the oldest unmatched offer right away, outside
                // the periodic budget (the root asked for it), and
                // rotate it so repeated solicits spread across donors
                if let Some((requester, problem)) = self.offers.pop_front() {
                    self.offers.push_back((requester, problem));
                    self.stats.escalations += 1;
                    ctx.send(self.root, GridMsg::SplitEscalate { requester, problem });
                } else {
                    // nothing to hand up yet: the pull stays pending and
                    // the next saturated offer answers it immediately
                    self.root_wants_work = true;
                }
            }
            // anything else reaching a sub-master is stray traffic from
            // a roster change mid-flight; it has no state to act on
            _ => {}
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<GridMsg>) {
        ctx.send(
            self.root,
            GridMsg::SiteStatus {
                idle: self.idle.len() as u32,
                busy: 0, // the root infers busy from its own roster
                steals: self.stats.tickets,
            },
        );
        ctx.schedule_tick(self.config.status_period_s);
    }

    fn on_node_down(&mut self, node: NodeId, _ctx: &mut Ctx<GridMsg>) {
        self.idle.remove(&node);
        self.offers.retain(|(d, _)| *d != node);
    }
}

impl SubMaster {
    /// Undeliverable ticket: the thief is gone — forget it, and put the
    /// offer back so the next announcer gets it.
    pub fn on_undeliverable(&mut self, to: NodeId, msg: GridMsg, _ctx: &mut Ctx<GridMsg>) {
        if let GridMsg::StealTicket { donor, problem } = msg {
            self.idle.remove(&to);
            if !self.offers.iter().any(|(d, _)| *d == donor) {
                self.offers.push_front((donor, problem));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsat_grid::NodeInfo;

    fn ctx(now: f64) -> Ctx<GridMsg> {
        Ctx::new(NodeInfo {
            id: NodeId(1),
            speed: 1000.0,
            memory: 3 << 20,
            now,
            availability: 1.0,
        })
    }

    fn sent(ctx: &mut Ctx<GridMsg>) -> Vec<(NodeId, GridMsg)> {
        ctx.take_actions()
            .into_iter()
            .filter_map(|a| match a {
                gridsat_grid::Action::Send { to, msg } => Some((to, msg)),
                _ => None,
            })
            .collect()
    }

    fn sm() -> SubMaster {
        SubMaster::new(NodeId(0), HierarchyConfig::default())
    }

    #[test]
    fn pairs_an_offer_with_a_later_idle_announcement() {
        let mut s = sm();
        let pid = ProblemId::new(NodeId(2), 1);
        let mut c = ctx(1.0);
        s.last_escalate = 0.5; // suppress escalation for this test
        s.on_message(NodeId(2), GridMsg::SplitRequest { problem: pid }, &mut c);
        assert!(sent(&mut c).is_empty(), "no idle capacity yet");
        s.on_message(NodeId(3), GridMsg::StealRequest, &mut c);
        let out = sent(&mut c);
        assert_eq!(out.len(), 1);
        let (to, GridMsg::StealTicket { donor, problem }) = &out[0] else {
            panic!("expected a steal ticket, got {out:?}");
        };
        assert_eq!(*to, NodeId(3));
        assert_eq!(*donor, NodeId(2));
        assert_eq!(*problem, pid);
        assert_eq!(s.stats.tickets, 1);
        assert!(s.offers.is_empty() && s.idle.is_empty());
    }

    #[test]
    fn pairs_an_idle_client_with_a_later_offer() {
        let mut s = sm();
        let pid = ProblemId::new(NodeId(2), 1);
        let mut c = ctx(1.0);
        s.on_message(NodeId(3), GridMsg::StealRequest, &mut c);
        assert!(sent(&mut c).is_empty());
        s.on_message(NodeId(2), GridMsg::SplitRequest { problem: pid }, &mut c);
        let out = sent(&mut c);
        assert!(
            matches!(out[..], [(to, GridMsg::StealTicket { donor, .. })]
                if to == NodeId(3) && donor == NodeId(2)),
            "{out:?}"
        );
    }

    #[test]
    fn never_pairs_a_client_with_itself() {
        let mut s = sm();
        let pid = ProblemId::new(NodeId(2), 1);
        let mut c = ctx(1.0);
        s.last_escalate = 0.5;
        s.on_message(NodeId(2), GridMsg::SplitRequest { problem: pid }, &mut c);
        // the donor finishes its own problem and goes idle: its stale
        // offer must be dropped, not matched back to it
        s.on_message(NodeId(2), GridMsg::StealRequest, &mut c);
        assert!(sent(&mut c).is_empty());
        assert!(s.idle.contains(&NodeId(2)));
        assert!(s.offers.is_empty());
    }

    #[test]
    fn escalates_saturated_offers_rate_limited() {
        let mut s = sm();
        let pid = ProblemId::new(NodeId(2), 1);
        let mut c = ctx(1.0);
        s.on_message(NodeId(2), GridMsg::SplitRequest { problem: pid }, &mut c);
        let out = sent(&mut c);
        assert!(
            matches!(out[..], [(to, GridMsg::SplitEscalate { requester, .. })]
                if to == NodeId(0) && requester == NodeId(2)),
            "{out:?}"
        );
        // a second saturated offer inside the window stays local
        let mut c = ctx(2.0);
        s.on_message(
            NodeId(4),
            GridMsg::SplitRequest {
                problem: ProblemId::new(NodeId(4), 1),
            },
            &mut c,
        );
        assert!(sent(&mut c).is_empty(), "escalation is rate-limited");
        assert_eq!(s.stats.escalations, 1);
        // past the window it escalates again
        let mut c = ctx(1.0 + HierarchyConfig::default().escalate_period_s);
        s.on_message(
            NodeId(5),
            GridMsg::SplitRequest {
                problem: ProblemId::new(NodeId(5), 1),
            },
            &mut c,
        );
        assert_eq!(sent(&mut c).len(), 1);
        assert_eq!(s.stats.escalations, 2);
    }

    #[test]
    fn undeliverable_ticket_requeues_the_offer() {
        let mut s = sm();
        let pid = ProblemId::new(NodeId(2), 1);
        let mut c = ctx(1.0);
        s.last_escalate = 0.5;
        s.on_message(NodeId(2), GridMsg::SplitRequest { problem: pid }, &mut c);
        s.on_message(NodeId(3), GridMsg::StealRequest, &mut c);
        assert_eq!(sent(&mut c).len(), 1, "ticket issued");
        s.on_undeliverable(
            NodeId(3),
            GridMsg::StealTicket {
                donor: NodeId(2),
                problem: pid,
            },
            &mut c,
        );
        assert_eq!(s.offers.front(), Some(&(NodeId(2), pid)));
        // the next announcer picks the recovered offer up
        s.on_message(NodeId(4), GridMsg::StealRequest, &mut c);
        assert!(
            matches!(sent(&mut c)[..], [(to, GridMsg::StealTicket { donor, .. })]
                if to == NodeId(4) && donor == NodeId(2))
        );
    }

    #[test]
    fn restart_clears_soft_state() {
        let mut s = sm();
        let mut c = ctx(1.0);
        s.on_message(NodeId(3), GridMsg::StealRequest, &mut c);
        s.on_message(
            NodeId(2),
            GridMsg::SplitRequest {
                problem: ProblemId::new(NodeId(2), 1),
            },
            &mut c,
        );
        s.on_start(&mut c);
        assert!(s.idle.is_empty() && s.offers.is_empty());
    }
}
