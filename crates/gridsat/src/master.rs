//! The GridSAT master: resource manager, client manager and scheduler
//! (paper Section 3.3), work backlog and migration (Section 3.4).
//!
//! The master never solves; it reads the problem, hands it to the first
//! registered client, brokers splits toward the best-ranked idle
//! resources, keeps a backlog when everything is busy, verifies reported
//! models against the original formula, and declares UNSAT when every
//! client has gone idle.
//!
//! Durability extension: every scheduling decision is appended to a
//! write-ahead [`MasterJournal`] *before* it is applied, and the
//! scheduling state itself lives in a [`MasterCore`] that is a
//! deterministic fold over the journal. A restarted master replays its
//! own journal (and self-checks the fold); a designated standby tails
//! journal batches piggybacked on control traffic and can promote
//! itself with [`Master::promoted`] when the feed goes quiet.

use crate::audit::Audit;
use crate::config::{CheckpointMode, GridConfig, SchedPolicy};
use crate::journal::{ClientInfo, JournalRecord, MasterCore, MasterJournal, RecoverySpec};
use crate::msg::{Checkpoint, EndReason, GridMsg, ProblemId, SubResult};
use crate::wire::SpecFrame;
use gridsat_cnf::{Assignment, Formula};
use gridsat_grid::{Ctx, NodeId, Process, Site};
use gridsat_nws::Forecaster;
use gridsat_obs::{Event, Histogram, MetricsRegistry, Obs};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

#[cfg(doc)]
use gridsat_solver::SplitSpec;

/// Final outcome of a GridSAT run.
#[derive(Clone, Debug, PartialEq)]
pub enum GridOutcome {
    /// Verified satisfying assignment.
    Sat(Assignment),
    /// Every subproblem refuted ("all the clients are idle").
    Unsat,
    /// Overall cap expired.
    TimeOut,
    /// A busy client was lost without checkpointing.
    ClientLost,
    /// The simulation went quiescent (event queue drained) while the
    /// master still had open subproblems: a control message was lost and
    /// never recovered. A correct reliability layer makes this
    /// unreachable — it is a detector, not a legitimate end state.
    Wedged,
}

impl GridOutcome {
    pub fn table_cell(&self) -> String {
        match self {
            GridOutcome::Sat(_) => "SAT".into(),
            GridOutcome::Unsat => "UNSAT".into(),
            GridOutcome::TimeOut => "TIME_OUT".into(),
            GridOutcome::ClientLost => "CLIENT_LOST".into(),
            GridOutcome::Wedged => "WEDGED".into(),
        }
    }
}

/// Master-side counters for the experiment report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MasterStats {
    /// Peak number of simultaneously busy clients (the paper's
    /// "Max # of clients" column).
    pub max_active_clients: usize,
    /// Splits successfully brokered.
    pub splits: u64,
    /// Split requests that had to wait in the backlog.
    pub backlogged: u64,
    /// Migrations directed.
    pub migrations: u64,
    /// SAT reports whose verification failed (must stay 0).
    pub verification_failures: u64,
    /// Subproblem results received.
    pub results: u64,
    /// Recoveries from checkpoints (extension).
    pub recoveries: u64,
    /// Client leases expired by missed heartbeats (reliability
    /// extension).
    pub lease_expiries: u64,
    /// Subproblems taken back after an undeliverable assignment or
    /// transfer (reliability extension).
    pub requeues: u64,
    /// Checksum-failing deliveries attributed to a peer (integrity
    /// extension).
    pub corrupt_msgs: u64,
    /// Clients deregistered for exceeding the corruption threshold
    /// (integrity extension).
    pub quarantines: u64,
    /// Delegated steal splits settled (hierarchy extension): a
    /// donor-to-thief transfer that completed without a master grant.
    pub steals_settled: u64,
    /// Delegated steal splits that failed and were rolled back.
    pub steals_aborted: u64,
    /// Split requests escalated to the root by a sub-master whose site
    /// had no idle client to steal from.
    pub escalations: u64,
}

impl MasterStats {
    /// Merge another master's counters (used when aggregating campaign
    /// runs). Exhaustively destructured so a new field that isn't merged
    /// is a compile error, not a silently-lost count.
    pub fn absorb(&mut self, other: &MasterStats) {
        let MasterStats {
            max_active_clients,
            splits,
            backlogged,
            migrations,
            verification_failures,
            results,
            recoveries,
            lease_expiries,
            requeues,
            corrupt_msgs,
            quarantines,
            steals_settled,
            steals_aborted,
            escalations,
        } = *other;
        self.max_active_clients = self.max_active_clients.max(max_active_clients);
        self.splits += splits;
        self.backlogged += backlogged;
        self.migrations += migrations;
        self.verification_failures += verification_failures;
        self.results += results;
        self.recoveries += recoveries;
        self.lease_expiries += lease_expiries;
        self.requeues += requeues;
        self.corrupt_msgs += corrupt_msgs;
        self.quarantines += quarantines;
        self.steals_settled += steals_settled;
        self.steals_aborted += steals_aborted;
        self.escalations += escalations;
    }

    /// Bridge every counter into a [`MetricsRegistry`] under `prefix`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let MasterStats {
            max_active_clients,
            splits,
            backlogged,
            migrations,
            verification_failures,
            results,
            recoveries,
            lease_expiries,
            requeues,
            corrupt_msgs,
            quarantines,
            steals_settled,
            steals_aborted,
            escalations,
        } = *self;
        reg.gauge_set(
            &format!("{prefix}.max_active_clients"),
            max_active_clients as f64,
        );
        reg.counter_add(&format!("{prefix}.splits"), splits);
        reg.counter_add(&format!("{prefix}.backlogged"), backlogged);
        reg.counter_add(&format!("{prefix}.migrations"), migrations);
        reg.counter_add(
            &format!("{prefix}.verification_failures"),
            verification_failures,
        );
        reg.counter_add(&format!("{prefix}.results"), results);
        reg.counter_add(&format!("{prefix}.recoveries"), recoveries);
        reg.counter_add(&format!("{prefix}.lease_expiries"), lease_expiries);
        reg.counter_add(&format!("{prefix}.requeues"), requeues);
        reg.counter_add(&format!("{prefix}.corrupt_msgs"), corrupt_msgs);
        reg.counter_add(&format!("{prefix}.quarantines"), quarantines);
        reg.counter_add(&format!("{prefix}.steals_settled"), steals_settled);
        reg.counter_add(&format!("{prefix}.steals_aborted"), steals_aborted);
        reg.counter_add(&format!("{prefix}.escalations"), escalations);
    }
}

/// Quantile summary of a latency histogram, in seconds — the
/// serializable face of [`Histogram`] for snapshots and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    pub count: u64,
    pub p50_s: f64,
    pub p90_s: f64,
    pub p99_s: f64,
    pub mean_s: f64,
}

impl LatencySummary {
    pub fn from_histogram(h: &Histogram) -> LatencySummary {
        LatencySummary {
            count: h.count(),
            p50_s: h.p50(),
            p90_s: h.p90(),
            p99_s: h.p99(),
            mean_s: h.mean(),
        }
    }
}

/// Control-plane latency telemetry (observability extension): how loaded
/// the master's inbox is, how long each message kind takes to service,
/// and how long a split request waits before its grant goes out. The
/// service time is *modeled* (a per-message fixed cost plus a per-byte
/// cost, scaled by the host's relative speed) — it feeds the report
/// without perturbing the simulation's timing.
#[derive(Clone, Debug)]
pub struct MasterTelemetry {
    /// Queue-depth proxy sampled on every handled message: backlogged
    /// split requests plus recovered subproblems awaiting dispatch.
    pub queue_depth: u64,
    pub queue_depth_max: u64,
    queue_depth_sum: u64,
    queue_samples: u64,
    /// Modeled service time per [`GridMsg::kind_str`] kind.
    service: BTreeMap<&'static str, Histogram>,
    /// Latency from a split request's arrival to its grant being sent.
    split_wait: Histogram,
}

impl Default for MasterTelemetry {
    fn default() -> MasterTelemetry {
        MasterTelemetry {
            queue_depth: 0,
            queue_depth_max: 0,
            queue_depth_sum: 0,
            queue_samples: 0,
            service: BTreeMap::new(),
            split_wait: Histogram::latency_s(),
        }
    }
}

impl MasterTelemetry {
    fn sample_queue(&mut self, depth: u64) {
        self.queue_depth = depth;
        self.queue_depth_max = self.queue_depth_max.max(depth);
        self.queue_depth_sum += depth;
        self.queue_samples += 1;
    }

    fn observe_service(&mut self, kind: &'static str, seconds: f64) {
        self.service
            .entry(kind)
            .or_insert_with(Histogram::latency_s)
            .observe(seconds);
    }

    fn observe_split_wait(&mut self, seconds: f64) {
        self.split_wait.observe(seconds);
    }

    /// Mean sampled queue depth (0 when nothing was sampled).
    pub fn mean_queue_depth(&self) -> f64 {
        if self.queue_samples == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_samples as f64
        }
    }

    /// Number of queue-depth samples folded into the mean.
    pub fn queue_samples(&self) -> u64 {
        self.queue_samples
    }

    pub fn split_wait_summary(&self) -> LatencySummary {
        LatencySummary::from_histogram(&self.split_wait)
    }

    /// Per-kind service-time summaries, alphabetical by kind.
    pub fn service_summaries(&self) -> Vec<(String, LatencySummary)> {
        self.service
            .iter()
            .map(|(k, h)| ((*k).to_string(), LatencySummary::from_histogram(h)))
            .collect()
    }

    /// Fold another master's telemetry into this one (a promoted standby
    /// absorbing the dead master's history).
    pub fn absorb(&mut self, other: &MasterTelemetry) {
        self.queue_depth_max = self.queue_depth_max.max(other.queue_depth_max);
        self.queue_depth_sum += other.queue_depth_sum;
        self.queue_samples += other.queue_samples;
        for (k, h) in &other.service {
            self.service
                .entry(k)
                .or_insert_with(Histogram::latency_s)
                .merge(h);
        }
        self.split_wait.merge(&other.split_wait);
    }

    /// Bridge the telemetry into a [`MetricsRegistry`] under `prefix`:
    /// queue gauges plus the latency histograms themselves (exposition
    /// renders their p50/p90/p99).
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.gauge_set(&format!("{prefix}.queue_depth"), self.queue_depth as f64);
        reg.gauge_set(
            &format!("{prefix}.queue_depth_max"),
            self.queue_depth_max as f64,
        );
        reg.gauge_set(
            &format!("{prefix}.queue_depth_mean"),
            self.mean_queue_depth(),
        );
        reg.insert_histogram(&format!("{prefix}.split_wait_s"), self.split_wait.clone());
        for (k, h) in &self.service {
            reg.insert_histogram(&format!("{prefix}.service_s.{k}"), h.clone());
        }
    }
}

/// A client's scheduling state as the master sees it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ClientState {
    /// Registered, no work.
    Idle,
    /// A subproblem transfer to this client is in flight.
    Receiving,
    /// Solving a subproblem.
    Busy,
}

/// What an in-flight grant is for.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum GrantKind {
    Split,
    Migrate,
}

/// Replication link to the journal-tailing standby.
struct StandbyLink {
    node: NodeId,
    /// Next sequence number to ship (records below it are in flight or
    /// delivered).
    sent: u64,
    /// Standby's cumulative ack: it holds every record below this.
    acked: u64,
}

/// The master process. Lives on node 0 of the testbed (or on the
/// promoted standby's node after a takeover).
pub struct Master {
    formula: Formula,
    config: GridConfig,
    /// Static host information from the Grid information service
    /// (MDS-style): peak speed and site.
    host_info: BTreeMap<NodeId, (f64, Site)>,
    /// This master's own node id: 0 for the initial master, the
    /// standby's id after a promotion.
    me: NodeId,
    /// Journaled scheduling state: roster, grants, backlog, recovery
    /// queue. Mutated exclusively through [`Master::commit`] so the
    /// journal is always a faithful history.
    pub(crate) core: MasterCore,
    journal: MasterJournal,
    standby: Option<StandbyLink>,
    /// Simulated second of the last journal replay (restart or
    /// promotion), for the snapshot.
    last_replay: Option<f64>,
    /// After a promotion, hold the all-idle UNSAT verdict until this
    /// instant: adoption claims from surviving clients may still be in
    /// flight, and the replayed journal suffix can be behind them.
    reconcile_until: f64,
    /// Search-space conservation auditor (disabled by default).
    audit: Audit,
    /// Set by the first `on_start`; a second call means the master node
    /// was restarted, which replays the journal and grants every client
    /// a fresh lease (their heartbeats could not have reached us while
    /// we were down).
    started: bool,
    /// Counter for subproblem ids minted by the master (dispatches).
    minted: u32,
    outcome: Option<GridOutcome>,
    finished_at: f64,
    rng_state: u64,
    last_migration: f64,
    pub stats: MasterStats,
    /// Control-plane latency telemetry (always on; cheap counters).
    pub telemetry: MasterTelemetry,
    /// Pending split requests: requester -> (arrival time of the first
    /// unanswered request, causal stamp of its delivery). Not journaled —
    /// it feeds telemetry and trace causality, never scheduling.
    pending_split_req: BTreeMap<NodeId, (f64, u64)>,
    /// Sub-masters that escalated an offer and may hold more: one solicit
    /// credit each, spent when the root has idle capacity and an empty
    /// backlog (hierarchy extension). Soft state — a lost solicit is
    /// covered by the broker's periodic escalation.
    solicit_credits: BTreeSet<NodeId>,
    /// Per-peer count of checksum-failing deliveries (integrity
    /// extension). Not journaled: strikes are evidence about the live
    /// network path, worthless to a replay.
    corrupt_strikes: BTreeMap<NodeId, u32>,
    /// Event-tracing handle (disabled by default).
    obs: Obs,
}

/// One client's row in a [`MasterSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClientSnapshot {
    pub id: u32,
    pub state: ClientState,
    /// Simulated second the client's current subproblem was assigned.
    pub problem_since: f64,
    pub has_checkpoint: bool,
}

/// Structured, serializable snapshot of the master's scheduler state
/// (replaces the old free-text `debug_state` dump). `Display` renders
/// the same human-readable summary the dump used to give.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct MasterSnapshot {
    pub clients: Vec<ClientSnapshot>,
    /// Requesters waiting for an idle peer, in queue order.
    pub backlog: Vec<u32>,
    /// In-flight grants as `(requester, peer, kind)`.
    pub grants: Vec<(u32, u32, GrantKind)>,
    /// Recovered subproblems awaiting an idle client.
    pub pending_recoveries: usize,
    /// The outcome's table cell, once decided.
    pub outcome: Option<String>,
    pub stats: MasterStats,
    /// Records appended to the write-ahead journal so far.
    pub journal_len: u64,
    /// Unacked journal suffix at the standby, when one is configured.
    pub standby_lag: Option<u64>,
    /// Simulated second of the last journal replay (restart or
    /// promotion).
    pub last_replay: Option<f64>,
    /// Queue-depth proxy at snapshot time (backlog + pending
    /// recoveries).
    pub queue_depth: u64,
    /// Highest queue depth sampled over the run.
    pub queue_depth_max: u64,
    /// Split-request -> grant wait latency quantiles.
    pub split_wait: LatencySummary,
    /// Modeled per-message-kind service-time quantiles.
    pub service: Vec<(String, LatencySummary)>,
}

impl std::fmt::Display for MasterSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in &self.clients {
            if c.state != ClientState::Idle {
                writeln!(
                    f,
                    "n{}: {:?} since {:.0}{}",
                    c.id,
                    c.state,
                    c.problem_since,
                    if c.has_checkpoint { " [ckpt]" } else { "" }
                )?;
            }
        }
        writeln!(f, "backlog: {:?}", self.backlog)?;
        writeln!(f, "grants: {:?}", self.grants)?;
        match self.standby_lag {
            Some(lag) => writeln!(
                f,
                "journal: {} records, standby lag {lag}",
                self.journal_len
            )?,
            None => writeln!(f, "journal: {} records", self.journal_len)?,
        }
        if let Some(outcome) = &self.outcome {
            writeln!(f, "outcome: {outcome}")?;
        }
        Ok(())
    }
}

impl Master {
    /// `host_info` is the static per-host information (speed, site) the
    /// paper's master culls from the Grid information system.
    pub fn new(
        formula: Formula,
        config: GridConfig,
        host_info: BTreeMap<NodeId, (f64, Site)>,
    ) -> Master {
        Master::boot(formula, config, host_info, NodeId(0))
    }

    fn boot(
        formula: Formula,
        config: GridConfig,
        host_info: BTreeMap<NodeId, (f64, Site)>,
        me: NodeId,
    ) -> Master {
        let rng_state = match config.scheduler {
            SchedPolicy::Random(seed) => seed | 1,
            _ => 1,
        };
        let standby = config.failover.and_then(|f| {
            (f.standby_node != me.0).then_some(StandbyLink {
                node: NodeId(f.standby_node),
                sent: 0,
                acked: 0,
            })
        });
        Master {
            formula,
            config,
            host_info,
            me,
            core: MasterCore::default(),
            journal: MasterJournal::new(),
            standby,
            last_replay: None,
            reconcile_until: f64::NEG_INFINITY,
            audit: Audit::default(),
            started: false,
            minted: 0,
            outcome: None,
            finished_at: 0.0,
            rng_state,
            last_migration: f64::NEG_INFINITY,
            stats: MasterStats::default(),
            telemetry: MasterTelemetry::default(),
            pending_split_req: BTreeMap::new(),
            solicit_credits: BTreeSet::new(),
            corrupt_strikes: BTreeMap::new(),
            obs: Obs::default(),
        }
    }

    /// Construct a master on the standby's node from the journal records
    /// it tailed: the scheduling state is the fold of `records`, every
    /// surviving client's lease restarts at `now`, and the all-idle
    /// UNSAT verdict is held until the adoption round has had a grace
    /// period to reconcile the journal suffix the standby never saw.
    #[allow(clippy::too_many_arguments)]
    pub fn promoted(
        formula: Formula,
        config: GridConfig,
        host_info: BTreeMap<NodeId, (f64, Site)>,
        me: NodeId,
        records: Vec<JournalRecord>,
        now: f64,
        obs: Obs,
        audit: Audit,
    ) -> Master {
        let mut m = Master::boot(formula, config, host_info, me);
        m.obs = obs;
        m.audit = audit;
        m.core = MasterJournal::replay(&m.formula, &m.config, &records);
        m.journal = MasterJournal::from_records(records);
        m.started = true;
        m.last_replay = Some(now);
        m.reconcile_until = now + m.config.failover.map_or(0.0, |f| f.promote_grace_s);
        // This node already minted problem ids while it was a client;
        // a high counter offset keeps the promoted master's mints from
        // colliding with them.
        m.minted = 1 << 31;
        for info in m.core.clients.values_mut() {
            info.last_seen = now;
        }
        let records_n = m.journal.len();
        let node = me.0;
        m.obs
            .emit(now, node, || Event::JournalReplay { records: records_n });
        m
    }

    /// After a promotion the standby stops being an ordinary client:
    /// deregister it from the replayed roster and, if it was busy, queue
    /// the subproblem it exported for re-dispatch.
    pub fn absorb_own_client(
        &mut self,
        now: f64,
        own: Option<(gridsat_solver::SplitSpec, Option<ProblemId>)>,
    ) {
        self.commit(
            now,
            JournalRecord::Promoted {
                node: self.me,
                at: now,
            },
        );
        // Any handshake the dead master brokered can no longer complete:
        // its SplitDone legs were addressed to a dead node, and the peer
        // may be this very node's retired client. Drop the grants; the
        // adoption round re-establishes who actually holds what, and a
        // transfer that died on the wire comes back as the requester's
        // Requeue.
        for requester in self.core.grants.keys().copied().collect::<Vec<_>>() {
            self.commit(
                now,
                JournalRecord::GrantClose {
                    requester,
                    free_peer: true,
                },
            );
        }
        if self.core.clients.contains_key(&self.me) {
            self.commit(now, JournalRecord::Deregister { client: self.me });
        }
        if let Some((spec, source)) = own {
            self.stats.recoveries += 1;
            self.commit(
                now,
                JournalRecord::RecoveryQueued {
                    recovery: RecoverySpec { spec, source },
                },
            );
        }
    }

    /// Announce the takeover to every surviving client (they retarget
    /// their control traffic and answer with
    /// [`GridMsg::Adopt`]), dispatch whatever the replay queued, and
    /// start the housekeeping clock.
    pub fn announce_takeover(&mut self, ctx: &mut Ctx<GridMsg>) {
        let records = self.journal.len();
        let node = self.me.0;
        self.obs
            .emit(ctx.now(), node, || Event::StandbyPromote { records });
        for id in self.core.clients.keys().copied().collect::<Vec<_>>() {
            ctx.send(id, GridMsg::Takeover);
        }
        self.dispatch_recoveries(ctx);
        self.drain_backlog(ctx);
        ctx.schedule_tick(self.config.master_period);
    }

    /// Install an event-tracing handle: the master emits its scheduling
    /// decisions (launch, assign, split, backlog, migrate, checkpoint,
    /// result, journal, outcome) into it.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Install a search-space conservation auditor handle.
    pub fn set_audit(&mut self, audit: Audit) {
        self.audit = audit;
    }

    /// Direct access to the write-ahead journal, for fault injection:
    /// chaos tests damage the simulated disk image
    /// ([`MasterJournal::tear_log`], [`MasterJournal::flip_log_bit`])
    /// while the master is "down", then let the restart recover it.
    pub fn journal_mut(&mut self) -> &mut MasterJournal {
        &mut self.journal
    }

    /// The run's outcome, once decided.
    pub fn outcome(&self) -> Option<&GridOutcome> {
        self.outcome.as_ref()
    }

    /// Simulated second at which the outcome was decided.
    pub fn finished_at(&self) -> f64 {
        self.finished_at
    }

    /// Structured snapshot of scheduler state (serializable; `Display`
    /// renders the human-readable form).
    pub fn snapshot(&self) -> MasterSnapshot {
        MasterSnapshot {
            clients: self
                .core
                .clients
                .iter()
                .map(|(id, c)| ClientSnapshot {
                    id: id.0,
                    state: c.state,
                    problem_since: c.problem_since,
                    has_checkpoint: c.checkpoint.is_some(),
                })
                .collect(),
            backlog: self.core.backlog.iter().map(|id| id.0).collect(),
            grants: self
                .core
                .grants
                .iter()
                .map(|(r, (p, k))| (r.0, p.0, *k))
                .collect(),
            pending_recoveries: self.core.pending_recovery.len(),
            outcome: self.outcome.as_ref().map(|o| o.table_cell()),
            stats: self.stats,
            journal_len: self.journal.len(),
            standby_lag: self
                .standby
                .as_ref()
                .map(|s| self.journal.len().saturating_sub(s.acked)),
            last_replay: self.last_replay,
            queue_depth: self.queue_depth(),
            queue_depth_max: self.telemetry.queue_depth_max,
            split_wait: self.telemetry.split_wait_summary(),
            service: self.telemetry.service_summaries(),
        }
    }

    /// The master's inbox-pressure proxy: backlogged split requests plus
    /// recovered subproblems waiting for an idle client.
    fn queue_depth(&self) -> u64 {
        (self.core.backlog.len() + self.core.pending_recovery.len()) as u64
    }

    /// Append a record to the write-ahead journal, then apply it to the
    /// core. This is the *only* mutation path for scheduling state: the
    /// journal is always a complete history of the core.
    fn commit(&mut self, now: f64, rec: JournalRecord) -> Option<RecoverySpec> {
        let record = self.journal.append(rec.clone());
        let lag = self
            .standby
            .as_ref()
            .map_or(0, |s| self.journal.len().saturating_sub(s.acked));
        let node = self.me.0;
        self.obs
            .emit(now, node, || Event::JournalAppend { record, lag });
        self.core.apply(&rec, &self.formula, &self.config)
    }

    /// Ship the unsent journal suffix to the standby. With `keepalive`
    /// an empty batch is sent even when nothing is new — the periodic
    /// feed is what lets the standby distinguish a dead master from a
    /// quiet one.
    fn ship_journal(&mut self, ctx: &mut Ctx<GridMsg>, keepalive: bool) {
        if self.outcome.is_some() {
            return;
        }
        let Some(link) = &self.standby else { return };
        let start = link.sent;
        let to = link.node;
        let records = self.journal.sealed_from(start);
        if records.is_empty() && !keepalive {
            return;
        }
        let len = self.journal.len();
        if let Some(link) = self.standby.as_mut() {
            link.sent = len;
        }
        ctx.send(to, GridMsg::JournalBatch { start, records });
    }

    fn rank(&self, id: NodeId, info: &ClientInfo) -> f64 {
        let availability = info.forecast.predict().unwrap_or(1.0).clamp(0.01, 1.0);
        let speed = self
            .host_info
            .get(&id)
            .map(|(s, _)| *s)
            .unwrap_or(info.speed);
        // memory as a small tie-break so better-provisioned hosts win
        speed * availability + info.memory as f64 * 1e-9
    }

    fn site_of(&self, id: NodeId) -> Option<Site> {
        self.host_info.get(&id).map(|(_, site)| *site)
    }

    /// Rank discounted by transfer locality: subproblem transfers are
    /// large, so a same-site target is worth more than a slightly faster
    /// remote one ("the master [can] select machines that are near the
    /// splitting client, leading to more efficient use of the available
    /// bandwidth", Section 3.4).
    fn placement_score(&self, id: NodeId, info: &ClientInfo, near: Option<Site>) -> f64 {
        let base = self.rank(id, info);
        match (near, self.site_of(id)) {
            (Some(a), Some(b)) if a != b => base * 0.4,
            _ => base,
        }
    }

    fn xorshift(&mut self) -> u64 {
        // deterministic scheduler randomness for the Random policy
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Pick an idle client per the configured policy; `near` biases the
    /// NWS policy toward transfer locality.
    fn pick_idle(&mut self, exclude: NodeId, near: Option<Site>) -> Option<NodeId> {
        let idle: Vec<NodeId> = self
            .core
            .clients
            .iter()
            .filter(|(id, c)| **id != exclude && c.state == ClientState::Idle)
            .map(|(id, _)| *id)
            .collect();
        if idle.is_empty() {
            return None;
        }
        match self.config.scheduler {
            SchedPolicy::NwsRank => idle.into_iter().max_by(|a, b| {
                let ra = self.placement_score(*a, &self.core.clients[a], near);
                let rb = self.placement_score(*b, &self.core.clients[b], near);
                ra.total_cmp(&rb).then(b.cmp(a)) // deterministic ties: lower id
            }),
            SchedPolicy::WorstRank => idle.into_iter().min_by(|a, b| {
                let ra = self.rank(*a, &self.core.clients[a]);
                let rb = self.rank(*b, &self.core.clients[b]);
                ra.total_cmp(&rb).then(a.cmp(b))
            }),
            SchedPolicy::Random(_) => {
                let i = (self.xorshift() % idle.len() as u64) as usize;
                Some(idle[i])
            }
        }
    }

    /// The longest-running busy client with a backlogged request
    /// ("the master splits clients which have been running the longest").
    fn pop_backlog(&mut self, now: f64) -> Option<NodeId> {
        if self.core.backlog.is_empty() {
            return None;
        }
        let mut best: Option<(NodeId, f64)> = None;
        for id in self.core.backlog.iter() {
            let Some(info) = self.core.clients.get(id) else {
                continue;
            };
            if info.state != ClientState::Busy {
                continue;
            }
            match best {
                Some((_, t)) if info.problem_since >= t => {}
                _ => best = Some((*id, info.problem_since)),
            }
        }
        let (id, _) = best?;
        self.commit(now, JournalRecord::BacklogRemove { client: id });
        Some(id)
    }

    /// A split request reached the root — directly from a client, or
    /// escalated by a sub-master whose site had no idle sibling.
    fn handle_split_request(&mut self, from: NodeId, problem: ProblemId, ctx: &mut Ctx<GridMsg>) {
        let busy = self
            .core
            .clients
            .get(&from)
            .map(|c| c.state == ClientState::Busy)
            .unwrap_or(false);
        if busy {
            if self.core.clients[&from].problem.is_none() {
                // learn the requester's subproblem if we missed it
                self.commit(
                    ctx.now(),
                    JournalRecord::ProblemLearned {
                        client: from,
                        problem,
                    },
                );
            }
            // grant only when the request names the subproblem we
            // believe the client holds: a retransmitted request
            // can land long after that subproblem was finished,
            // and taking its word would regress our view. The
            // client re-requests periodically, so a skipped grant
            // only delays the split.
            if self.core.clients[&from].problem == Some(problem) {
                // start the request->grant latency clock at the
                // *first* unanswered request; periodic re-requests
                // must not reset it
                self.pending_split_req
                    .entry(from)
                    .or_insert((ctx.now(), self.obs.cause_of(self.me.0)));
                self.grant_split(from, ctx);
            }
        }
    }

    /// A thief's report on a delegated (sub-master brokered) split. On
    /// success the steal settles: the thief is Busy on the minted
    /// subproblem and the donor's clock restarts — the exact effect of a
    /// grant-brokered split, folded through the journal so standby
    /// promotion and the conservation audit stay exact. On failure the
    /// steal aborts; the search space comes back via the thief's Requeue.
    fn handle_steal_done(
        &mut self,
        from: NodeId,
        donor: NodeId,
        ok: bool,
        problem: Option<ProblemId>,
        checkpoint: Option<Box<Checkpoint>>,
        ctx: &mut Ctx<GridMsg>,
    ) {
        let Some(problem) = problem else {
            debug_assert!(false, "stolen SplitDone always names the minted problem");
            return;
        };
        if self.core.seen_steals.contains(&problem) {
            return; // duplicate delivery of a settled/aborted steal
        }
        if ok {
            if self.core.clients.contains_key(&from) {
                let cp = if self.config.checkpoint != CheckpointMode::Off {
                    checkpoint.map(|b| *b)
                } else {
                    None
                };
                self.commit(
                    ctx.now(),
                    JournalRecord::StealSettle {
                        donor,
                        thief: from,
                        problem,
                        checkpoint: cp,
                        at: ctx.now(),
                    },
                );
                self.stats.steals_settled += 1;
                let node = self.me.0;
                self.obs.emit(ctx.now(), node, || Event::Split {
                    requester: donor.0,
                    peer: from.0,
                });
                self.note_activity();
            } else if let Some(cp) = checkpoint {
                // the thief's lease expired mid-steal and it was
                // deregistered, yet it is solving the cube untracked:
                // close the steal and re-dispatch from the bundled image
                // (duplicated work beats losing sight of a search space)
                self.commit(ctx.now(), JournalRecord::StealAbort { problem });
                self.stats.steals_aborted += 1;
                let spec = MasterCore::spec_from_checkpoint(&self.formula, *cp);
                self.commit(
                    ctx.now(),
                    JournalRecord::RecoveryQueued {
                        recovery: RecoverySpec {
                            spec,
                            source: Some(problem),
                        },
                    },
                );
                self.stats.recoveries += 1;
                self.dispatch_recoveries(ctx);
            } else {
                // no image to recover from (checkpointing off)
                self.finish(GridOutcome::ClientLost, EndReason::ClientLost, ctx);
                return;
            }
        } else {
            self.commit(ctx.now(), JournalRecord::StealAbort { problem });
            self.stats.steals_aborted += 1;
            // closing the ledger entry may release all-idle termination
            self.check_termination(ctx);
        }
        self.drain_backlog(ctx);
    }

    fn grant_split(&mut self, requester: NodeId, ctx: &mut Ctx<GridMsg>) -> bool {
        if self.core.grants.contains_key(&requester) {
            return false;
        }
        let Some(problem) = self.core.clients.get(&requester).and_then(|c| c.problem) else {
            return false;
        };
        let near = self.site_of(requester);
        let Some(peer) = self.pick_idle(requester, near) else {
            if !self.core.backlog.contains(&requester) {
                self.commit(ctx.now(), JournalRecord::BacklogPush { client: requester });
                self.stats.backlogged += 1;
                let depth = self.core.backlog.len() as u64;
                let node = self.me.0;
                self.obs.emit(ctx.now(), node, || Event::BacklogEnqueue {
                    client: requester.0,
                    depth,
                });
            }
            return false;
        };
        self.commit(
            ctx.now(),
            JournalRecord::GrantOpen {
                requester,
                peer,
                kind: GrantKind::Split,
            },
        );
        // close the request->grant latency window, and re-anchor the
        // grant's send on the request's delivery so a backlogged grant
        // traces back to the request that asked for it, not to whatever
        // message happened to unblock the backlog
        if let Some((asked_at, cause)) = self.pending_split_req.remove(&requester) {
            self.telemetry
                .observe_split_wait((ctx.now() - asked_at).max(0.0));
            if cause != 0 {
                self.obs.set_cause(self.me.0, cause);
            }
        }
        ctx.send(requester, GridMsg::SplitGrant { peer, problem });
        true
    }

    /// Serve backlog entries while idle clients remain.
    fn drain_backlog(&mut self, ctx: &mut Ctx<GridMsg>) {
        while let Some(requester) = self.pop_backlog(ctx.now()) {
            if !self.grant_split(requester, ctx) {
                break; // no idle peers left (requester went back to backlog)
            }
            let depth = self.core.backlog.len() as u64;
            let node = self.me.0;
            self.obs.emit(ctx.now(), node, || Event::BacklogDequeue {
                client: requester.0,
                depth,
            });
        }
        self.maybe_solicit(ctx);
    }

    /// Idle capacity with nothing backlogged: spend one solicit credit
    /// pulling an offer from a work-surplus site, instead of letting a
    /// freed client sit out a broker's escalate window (hierarchy
    /// extension; a no-op in flat mode, where no credits ever accrue).
    fn maybe_solicit(&mut self, ctx: &mut Ctx<GridMsg>) {
        if self.solicit_credits.is_empty()
            || self.outcome.is_some()
            || !self.core.backlog.is_empty()
        {
            return;
        }
        let any_idle = self
            .core
            .clients
            .values()
            .any(|c| c.state == ClientState::Idle);
        if !any_idle {
            return;
        }
        if let Some(broker) = self.solicit_credits.pop_first() {
            ctx.send(broker, GridMsg::OfferSolicit);
        }
    }

    /// Migration policy: if a busy client sits on a much weaker host
    /// than the best idle one, move its problem (paper Section 3.4).
    fn maybe_migrate(&mut self, ctx: &mut Ctx<GridMsg>) {
        if !self.config.migration || !self.core.backlog.is_empty() {
            return;
        }
        // Migration is a coarse, rare event in the paper ("when the
        // cluster becomes free"): require a field of idle resources and
        // space out transfers, which are expensive.
        let cooldown = (2.0 * self.config.min_split_timeout).max(200.0);
        if ctx.now() - self.last_migration < cooldown {
            return;
        }
        // Only rescue stragglers during the drain phase: a migrated
        // subproblem restarts its search (keeping learned clauses), so
        // mid-run migration costs more than it saves.
        let idle_count = self
            .core
            .clients
            .values()
            .filter(|c| c.state == ClientState::Idle)
            .count();
        let busy = self.core.busy_count();
        if idle_count < 3 || busy * 4 > self.core.clients.len() {
            return;
        }
        // weakest busy client, not already involved in a grant and old
        // enough on its subproblem that moving it is worth the transfer
        let min_age = (2.0 * self.config.min_split_timeout).max(200.0);
        let mut weakest: Option<(NodeId, f64)> = None;
        for (id, c) in &self.core.clients {
            if c.state != ClientState::Busy || self.core.grants.contains_key(id) {
                continue;
            }
            if ctx.now() - c.problem_since < min_age {
                continue;
            }
            let r = self.rank(*id, c);
            if weakest.map(|(_, wr)| r < wr).unwrap_or(true) {
                weakest = Some((*id, r));
            }
        }
        let Some((weak_id, weak_rank)) = weakest else {
            return;
        };
        // migration targets are always rank-picked (even under the
        // Random/Worst scheduler ablations): moving a hard subproblem to a
        // weak host would defeat the point
        let near = self.site_of(weak_id);
        let best_idle = self
            .core
            .clients
            .iter()
            .filter(|(id, c)| **id != weak_id && c.state == ClientState::Idle)
            .max_by(|(a, ca), (b, cb)| {
                let ra = self.placement_score(**a, ca, near);
                let rb = self.placement_score(**b, cb, near);
                ra.total_cmp(&rb).then(b.cmp(a))
            })
            .map(|(id, _)| *id);
        let Some(best_idle) = best_idle else { return };
        let idle_rank = self.rank(best_idle, &self.core.clients[&best_idle]);
        let Some(problem) = self.core.clients.get(&weak_id).and_then(|c| c.problem) else {
            return;
        };
        if idle_rank >= weak_rank * self.config.migration_factor {
            self.commit(
                ctx.now(),
                JournalRecord::GrantOpen {
                    requester: weak_id,
                    peer: best_idle,
                    kind: GrantKind::Migrate,
                },
            );
            ctx.send(
                weak_id,
                GridMsg::Migrate {
                    peer: best_idle,
                    problem,
                },
            );
            self.last_migration = ctx.now();
            self.stats.migrations += 1;
            let node = self.me.0;
            self.obs.emit(ctx.now(), node, || Event::Migrate {
                from: weak_id.0,
                to: best_idle.0,
            });
        }
    }

    fn note_activity(&mut self) {
        self.stats.max_active_clients = self.stats.max_active_clients.max(self.core.busy_count());
    }

    fn finish(&mut self, outcome: GridOutcome, reason: EndReason, ctx: &mut Ctx<GridMsg>) {
        if self.outcome.is_some() {
            return;
        }
        // the auditor's conservation check fires exactly at the UNSAT
        // declaration; every other outcome releases it
        match &outcome {
            GridOutcome::Unsat => self.audit.unsat_declared(ctx.now()),
            _ => self.audit.conclude(),
        }
        self.finished_at = ctx.now();
        let cell = outcome.table_cell();
        let node = self.me.0;
        self.obs
            .emit(ctx.now(), node, || Event::Outcome { outcome: cell });
        self.outcome = Some(outcome);
        for id in self.core.clients.keys().copied().collect::<Vec<_>>() {
            ctx.send(id, GridMsg::Terminate(reason));
        }
        ctx.shutdown();
    }

    fn check_termination(&mut self, ctx: &mut Ctx<GridMsg>) {
        if self.outcome.is_some() {
            return;
        }
        if ctx.now() >= self.config.overall_timeout {
            self.finish(GridOutcome::TimeOut, EndReason::TimeOut, ctx);
            return;
        }
        // "All the clients are idle" => unsatisfiable. Guard against
        // in-flight transfers via the Receiving state, open grants,
        // queued recoveries, and a just-promoted master's reconcile
        // window.
        if self.core.first_problem_sent
            && self.core.busy_count() == 0
            && self.core.grants.is_empty()
            && self.core.pending_recovery.is_empty()
            && self.core.pending_steals.is_empty()
            && ctx.now() >= self.reconcile_until
        {
            self.finish(GridOutcome::Unsat, EndReason::Unsat, ctx);
        }
    }

    /// Broadcast the registered-client list (clause-sharing fan-out).
    /// The roster carries its epoch so clients agree on which relay tree
    /// a share batch was routed on; every membership change bumps it.
    fn broadcast_peers(&mut self, ctx: &mut Ctx<GridMsg>) {
        let peers: Vec<NodeId> = self.core.clients.keys().copied().collect();
        let epoch = self.core.peers_epoch;
        self.obs
            .emit(ctx.now(), ctx.me().0, || Event::RelayRebuild {
                epoch,
                peers: peers.len() as u64,
            });
        for id in &peers {
            ctx.send(
                *id,
                GridMsg::Peers {
                    epoch,
                    peers: peers.clone(),
                },
            );
        }
    }

    /// Recover a lost busy client from its checkpoint (extension).
    /// Returns `false` when no checkpoint exists (recovery impossible).
    fn recover(&mut self, lost: NodeId, ctx: &mut Ctx<GridMsg>) -> bool {
        let Some(info) = self.core.clients.get(&lost) else {
            return false;
        };
        let source = info.problem;
        let Some(cp) = info.checkpoint.clone() else {
            return false;
        };
        let spec = MasterCore::spec_from_checkpoint(&self.formula, cp);
        self.commit(
            ctx.now(),
            JournalRecord::RecoveryQueued {
                recovery: RecoverySpec { spec, source },
            },
        );
        self.stats.recoveries += 1;
        self.dispatch_recoveries(ctx);
        true
    }

    /// Drop every open grant involving `node`, and free any still-tracked
    /// peer those grants had reserved: a Receiving reservation must never
    /// outlive the grant that made it, or the peer blocks the all-idle
    /// UNSAT condition forever.
    fn drop_grants_involving(&mut self, node: NodeId, now: f64) {
        let dropped: Vec<(NodeId, NodeId)> = self
            .core
            .grants
            .iter()
            .filter(|(r, (p, _))| **r == node || *p == node)
            .map(|(r, (p, _))| (*r, *p))
            .collect();
        for (requester, peer) in dropped {
            self.commit(
                now,
                JournalRecord::GrantClose {
                    requester,
                    free_peer: peer != node,
                },
            );
        }
    }

    /// A client is gone (node down or lease expired): free its resources
    /// and recover its subproblem if possible.
    fn handle_client_loss(&mut self, node: NodeId, ctx: &mut Ctx<GridMsg>) {
        // a dead requester's split request will never be granted; drop
        // it from the latency window so it cannot close much later
        // against an unrelated requester incarnation
        self.pending_split_req.remove(&node);
        let Some(info) = self.core.clients.get(&node) else {
            return;
        };
        match info.state {
            ClientState::Idle => {
                // "When an idle client is killed ... the master becomes
                // aware of it and marks the resource as free."
                //
                // An idle client can still be the requester of an open
                // grant: it went idle after asking to split (its result
                // beat the grant), and the SplitDone that would have
                // closed the handshake died with it. The grant — and the
                // Receiving reservation it pinned on the peer — must not
                // outlive the client, or the all-idle UNSAT condition is
                // blocked forever.
                self.commit(ctx.now(), JournalRecord::Deregister { client: node });
                self.drop_grants_involving(node, ctx.now());
                self.broadcast_peers(ctx);
                self.drain_backlog(ctx);
            }
            ClientState::Receiving if self.config.reliability.is_some() => {
                // nothing to recover: the requester still holds the whole
                // subproblem, and its undeliverable transfer will come
                // back to us as a Requeue
                self.commit(ctx.now(), JournalRecord::Deregister { client: node });
                self.drop_grants_involving(node, ctx.now());
                self.broadcast_peers(ctx);
                self.drain_backlog(ctx);
            }
            ClientState::Busy | ClientState::Receiving => {
                // try checkpoint recovery; without it, the paper's current
                // implementation "will not tolerate a machine crash"
                if self.config.checkpoint != CheckpointMode::Off && self.recover(node, ctx) {
                    self.commit(ctx.now(), JournalRecord::Deregister { client: node });
                    self.drop_grants_involving(node, ctx.now());
                    self.broadcast_peers(ctx);
                    self.dispatch_recoveries(ctx);
                    self.drain_backlog(ctx);
                } else {
                    self.finish(GridOutcome::ClientLost, EndReason::ClientLost, ctx);
                }
            }
        }
    }

    /// Expire clients whose lease (heartbeat_period x lease_misses) ran
    /// out: a partitioned or silently-dead client is treated exactly like
    /// a crashed one (reliability extension).
    fn expire_leases(&mut self, ctx: &mut Ctx<GridMsg>) {
        let Some(rel) = self.config.reliability else {
            return;
        };
        let lease = rel.heartbeat_period * f64::from(rel.lease_misses);
        let now = ctx.now();
        let expired: Vec<NodeId> = self
            .core
            .clients
            .iter()
            .filter(|(_, c)| now - c.last_seen > lease)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            self.stats.lease_expiries += 1;
            let node = self.me.0;
            self.obs
                .emit(now, node, || Event::LeaseExpire { client: id.0 });
            self.commit(now, JournalRecord::LeaseExpired { client: id });
            self.handle_client_loss(id, ctx);
            if self.outcome.is_some() {
                return;
            }
        }
    }

    /// A control message toward `to` exhausted its retry budget or its
    /// destination went down with the message unacked (reliability
    /// extension). Undo whatever the send was supposed to accomplish.
    pub fn on_undeliverable(&mut self, to: NodeId, msg: GridMsg, ctx: &mut Ctx<GridMsg>) {
        if self.outcome.is_some() {
            return;
        }
        match msg {
            GridMsg::Solve { spec, problem } => {
                // the assignment never arrived: take the subproblem back
                // and hand it to someone else. The returned frame is our
                // own stored clean copy, so it always opens; a frame that
                // somehow does not carries no search space to recover.
                let Ok(spec) = spec.open() else { return };
                if self
                    .core
                    .clients
                    .get(&to)
                    .is_some_and(|i| i.problem == Some(problem))
                {
                    self.commit(ctx.now(), JournalRecord::ClientIdle { client: to });
                }
                self.commit(
                    ctx.now(),
                    JournalRecord::RecoveryQueued {
                        recovery: RecoverySpec {
                            spec,
                            source: Some(problem),
                        },
                    },
                );
                self.stats.requeues += 1;
                self.dispatch_recoveries(ctx);
            }
            GridMsg::SplitGrant { .. } | GridMsg::Migrate { .. } => {
                // the grant never reached the requester: forget it and
                // free the reserved peer
                if self.core.grants.contains_key(&to) {
                    self.commit(
                        ctx.now(),
                        JournalRecord::GrantClose {
                            requester: to,
                            free_peer: true,
                        },
                    );
                }
                self.drain_backlog(ctx);
            }
            GridMsg::JournalBatch { start, .. } => {
                // the standby missed a batch: rewind the ship cursor so
                // the next ship re-sends from the gap
                if let Some(link) = self.standby.as_mut() {
                    if link.node == to {
                        link.sent = link.sent.min(start);
                    }
                }
            }
            // peer lists are re-broadcast on every membership change and
            // a terminate to a dead client changes nothing
            _ => {}
        }
        self.ship_journal(ctx, false);
    }

    /// A delivery from `from` failed its payload checksum (integrity
    /// extension). Delivery recovery is the reliable layer's business;
    /// here we track the per-peer strike count and quarantine a peer
    /// whose path mangles so much traffic that it cannot be trusted:
    /// deregister it exactly like an expired lease, recovering its
    /// subproblem from the last checkpoint.
    pub fn on_corrupt(&mut self, from: NodeId, ctx: &mut Ctx<GridMsg>) {
        if self.outcome.is_some() {
            return;
        }
        self.stats.corrupt_msgs += 1;
        let strikes = self.corrupt_strikes.entry(from).or_insert(0);
        *strikes += 1;
        let strikes = u64::from(*strikes);
        let limit = self
            .config
            .reliability
            .map_or(u64::MAX, |r| u64::from(r.quarantine_strikes.max(1)));
        if strikes < limit || !self.core.clients.contains_key(&from) {
            return;
        }
        self.corrupt_strikes.remove(&from);
        self.stats.quarantines += 1;
        let now = ctx.now();
        let node = self.me.0;
        self.obs.emit(now, node, || Event::PeerQuarantine {
            client: from.0,
            strikes,
        });
        // same exit as a lease expiry: the journal records the loss, and
        // the client's work is recovered or requeued
        self.commit(now, JournalRecord::LeaseExpired { client: from });
        self.handle_client_loss(from, ctx);
        self.ship_journal(ctx, false);
    }

    /// Hand queued recovered subproblems to idle clients.
    fn dispatch_recoveries(&mut self, ctx: &mut Ctx<GridMsg>) {
        while !self.core.pending_recovery.is_empty() {
            let Some(target) = self.pick_idle(NodeId(u32::MAX), None) else {
                return;
            };
            self.minted += 1;
            let problem = ProblemId::new(self.me, self.minted);
            let rec = self
                .commit(
                    ctx.now(),
                    JournalRecord::AssignRecovery {
                        client: target,
                        problem,
                        at: ctx.now(),
                    },
                )
                .expect("non-empty recovery queue returns the spec");
            self.audit
                .reassign(ctx.now(), rec.source, problem, Some(target));
            ctx.send(
                target,
                GridMsg::Solve {
                    spec: Box::new(SpecFrame::seal(&rec.spec)),
                    problem,
                },
            );
            let node = self.me.0;
            self.obs
                .emit(ctx.now(), node, || Event::Assign { client: target.0 });
        }
    }
}

impl Process for Master {
    type Msg = GridMsg;

    fn on_start(&mut self, ctx: &mut Ctx<GridMsg>) {
        if self.started {
            // restart: all that survived the crash is the on-disk journal
            // image. Recover it (truncating any torn or bit-rotted tail
            // at the first record that fails its checksum or sequence
            // stamp), rebuild the scheduling state as the fold of the
            // verified prefix, and give every lease a fresh start
            // (clients kept heartbeating into the void while we were
            // down).
            let now = ctx.now();
            let node = self.me.0;
            let (recovered, report) = MasterJournal::recover(self.journal.log_bytes());
            // a tear at an exact record boundary parses clean and leaves
            // no byte residue — only the pre-crash in-memory length
            // (which the simulation retains) tells it apart from "those
            // records were never written", so `dropped_bytes` is 0 there
            let boundary_tear = report.is_clean() && recovered.len() < self.journal.len();
            if report.is_clean() && !boundary_tear {
                // with an undamaged log the fold must reproduce the
                // pre-crash live state exactly
                debug_assert_eq!(
                    MasterJournal::replay(&self.formula, &self.config, recovered.records()).image(),
                    self.core.image(),
                    "journal replay must reproduce the live scheduling state"
                );
            } else {
                let kept = recovered.len();
                let dropped_bytes = report.truncated_bytes as u64;
                self.obs.emit(now, node, || Event::JournalTruncate {
                    kept,
                    dropped_bytes,
                });
            }
            self.journal = recovered;
            self.core = MasterJournal::replay(&self.formula, &self.config, self.journal.records());
            for info in self.core.clients.values_mut() {
                info.last_seen = now;
            }
            let records = self.journal.len();
            self.obs
                .emit(now, node, || Event::JournalReplay { records });
            self.last_replay = Some(now);
            // anything shipped but unacked may have died with us — and a
            // truncated journal may now be shorter than what was acked
            if let Some(link) = self.standby.as_mut() {
                link.sent = link.acked.min(records);
                link.acked = link.acked.min(records);
            }
            if !report.is_clean() || boundary_tear {
                // the fold lost committed state: assignments, idles, or
                // whole registrations may be gone, and nobody will
                // resend them unprompted. Ask every host to re-announce
                // its in-progress work — the same Takeover → Adopt
                // resync a promoted standby uses — so the roster
                // reconverges on reality instead of wedging on a client
                // the master no longer remembers (or remembers wrong).
                //
                // Replayed in-flight grants are stale by construction
                // (the live run had moved past them before the crash):
                // an open grant whose GrantClose was in the torn tail
                // would pin its Receiving peer and block the all-idle
                // UNSAT condition forever. Drop them all, exactly as a
                // promoted standby does — the adoption round
                // re-establishes who actually holds what.
                for requester in self.core.grants.keys().copied().collect::<Vec<_>>() {
                    self.commit(
                        now,
                        JournalRecord::GrantClose {
                            requester,
                            free_peer: true,
                        },
                    );
                }
                for id in self.host_info.keys().copied().collect::<Vec<_>>() {
                    if id != self.me {
                        ctx.send(id, GridMsg::Takeover);
                    }
                }
                // hold the UNSAT verdict until the Adopt replies have
                // had time to land: right after a deep tear the fold
                // may show every client idle even though some are still
                // mid-cube
                self.reconcile_until = self
                    .reconcile_until
                    .max(now + self.config.failover.map_or(2.0, |f| f.promote_grace_s));
            }
        }
        self.started = true;
        ctx.schedule_tick(self.config.master_period);
    }

    fn on_message(&mut self, from: NodeId, msg: GridMsg, ctx: &mut Ctx<GridMsg>) {
        if self.outcome.is_some() {
            return;
        }
        // control-plane telemetry on every handled message: inbox
        // pressure, and a modeled service time (fixed per-message cost
        // plus a per-byte cost, scaled by this host's relative speed —
        // never charged against the simulation clock)
        self.telemetry.sample_queue(self.queue_depth());
        {
            use gridsat_grid::MessageSize;
            let speed_rel = (ctx.info.speed / 1000.0).max(1e-6);
            let service_s = (50e-6 + msg.size_bytes() as f64 * 2e-9) / speed_rel;
            self.telemetry.observe_service(msg.kind_str(), service_s);
        }
        // any traffic renews the sender's lease, not just heartbeats
        if let Some(info) = self.core.clients.get_mut(&from) {
            info.last_seen = ctx.now();
        }
        match msg {
            GridMsg::Register {
                memory,
                availability,
            } => {
                let speed = self.host_info.get(&from).map(|(s, _)| *s).unwrap_or(1.0);
                self.commit(
                    ctx.now(),
                    JournalRecord::Launch {
                        client: from,
                        memory,
                        speed,
                        availability,
                        at: ctx.now(),
                    },
                );
                self.broadcast_peers(ctx);
                let node = self.me.0;
                self.obs
                    .emit(ctx.now(), node, || Event::ClientLaunch { client: from.0 });
                if !self.core.first_problem_sent {
                    // "The first client to register with the master is
                    // sent the entire problem to solve."
                    self.minted += 1;
                    let problem = ProblemId::new(self.me, self.minted);
                    let rec = self
                        .commit(
                            ctx.now(),
                            JournalRecord::AssignWhole {
                                client: from,
                                problem,
                                at: ctx.now(),
                            },
                        )
                        .expect("whole-problem dispatch returns the spec");
                    self.audit.assign_root(ctx.now(), problem, from);
                    ctx.send(
                        from,
                        GridMsg::Solve {
                            spec: Box::new(SpecFrame::seal(&rec.spec)),
                            problem,
                        },
                    );
                    self.obs
                        .emit(ctx.now(), node, || Event::Assign { client: from.0 });
                } else {
                    // a fresh resource may unblock the backlog
                    self.drain_backlog(ctx);
                }
                self.note_activity();
            }
            GridMsg::SplitRequest { problem } => {
                self.handle_split_request(from, problem, ctx);
            }
            GridMsg::SplitEscalate { requester, problem } => {
                // a sub-master had no idle client on its site and hands
                // the split request up; broker the grant globally, exactly
                // as if the requester had asked the root directly. The
                // escalation also earns the broker a solicit credit: its
                // site likely holds more unmatched offers, and the root
                // will pull one the moment capacity frees elsewhere
                self.stats.escalations += 1;
                self.solicit_credits.insert(from);
                self.handle_split_request(requester, problem, ctx);
            }
            GridMsg::StealNotice { thief, problem, at } => {
                // a donor delegated a split inside its site; open the
                // steal in the ledger so all-idle termination waits for
                // the thief's report and standby promotion sees the cube
                if !self.core.seen_steals.contains(&problem)
                    && !self.core.pending_steals.contains_key(&problem)
                {
                    self.commit(
                        ctx.now(),
                        JournalRecord::StealOpen {
                            donor: from,
                            thief,
                            problem,
                            at,
                        },
                    );
                }
            }
            // per-site occupancy telemetry from a sub-master; advisory
            // only — the root's scheduling state comes from the protocol
            GridMsg::SiteStatus { .. } => {}
            GridMsg::SplitDone {
                requester,
                peer,
                ok,
                problem,
                checkpoint,
                stolen,
            } => {
                if stolen {
                    self.handle_steal_done(from, requester, ok, problem, checkpoint, ctx);
                    return;
                }
                let grant = self.core.grants.get(&requester).copied();
                if from == requester {
                    // Figure 3 message (5): the requester's report
                    match (ok, grant) {
                        (false, Some((granted_peer, _))) => {
                            // transfer never happened; free the peer
                            debug_assert_eq!(granted_peer, peer);
                            self.commit(
                                ctx.now(),
                                JournalRecord::GrantClose {
                                    requester,
                                    free_peer: true,
                                },
                            );
                        }
                        (true, Some((_, GrantKind::Split))) => {
                            // requester keeps its half on a fresh clock
                            self.commit(
                                ctx.now(),
                                JournalRecord::SplitKept {
                                    requester,
                                    at: ctx.now(),
                                },
                            );
                            self.stats.splits += 1;
                            let node = self.me.0;
                            self.obs.emit(ctx.now(), node, || Event::Split {
                                requester: requester.0,
                                peer: peer.0,
                            });
                        }
                        (true, Some((_, GrantKind::Migrate))) => {
                            self.commit(ctx.now(), JournalRecord::MigrateSent { requester });
                        }
                        // peer's confirmation already closed the grant
                        (_, None) => {}
                    }
                } else if from == peer {
                    // Figure 3 message (4): the receiving peer's report.
                    // If the peer's result overtook this confirmation the
                    // subproblem is already finished; marking the peer
                    // Busy now would wedge the run waiting for a result
                    // that was consumed long ago.
                    let already_done =
                        problem.is_some_and(|p| self.core.early_results.contains(&(from, p)));
                    if already_done {
                        self.commit(
                            ctx.now(),
                            JournalRecord::EarlyResultConsume {
                                client: from,
                                problem: problem.expect("checked above"),
                            },
                        );
                    }
                    let grant_open = grant.is_some_and(|(p, _)| p == from);
                    if ok && !already_done {
                        if self.core.clients.contains_key(&from) {
                            // a confirmation from a tracked peer with no
                            // open grant is a replay of one we already
                            // processed (our dedup window died with a
                            // restart); the subproblem it confirms has
                            // long been handled
                            if grant_open {
                                // the confirmation bundles the peer's
                                // initial recovery image, so a client is
                                // never Busy without one — a crash at any
                                // point after this stays recoverable
                                let cp = if self.config.checkpoint != CheckpointMode::Off {
                                    checkpoint.map(|b| *b)
                                } else {
                                    None
                                };
                                let heavy =
                                    cp.as_ref().map(|c| matches!(c, Checkpoint::Heavy { .. }));
                                self.commit(
                                    ctx.now(),
                                    JournalRecord::TransferIn {
                                        peer: from,
                                        problem,
                                        checkpoint: cp,
                                        at: ctx.now(),
                                    },
                                );
                                if let Some(heavy) = heavy {
                                    let node = self.me.0;
                                    self.obs.emit(ctx.now(), node, || Event::CheckpointSaved {
                                        client: from.0,
                                        heavy,
                                    });
                                }
                            }
                        } else if let Some(cp) = checkpoint {
                            // the peer's lease expired mid-transfer and it
                            // was deregistered — yet the transfer landed
                            // and it is now solving, untracked. Re-dispatch
                            // from the bundled image: duplicated work, but
                            // UNSAT must never close over a search space
                            // the master has lost sight of.
                            let spec = MasterCore::spec_from_checkpoint(&self.formula, *cp);
                            self.commit(
                                ctx.now(),
                                JournalRecord::RecoveryQueued {
                                    recovery: RecoverySpec {
                                        spec,
                                        source: problem,
                                    },
                                },
                            );
                            self.stats.recoveries += 1;
                            self.dispatch_recoveries(ctx);
                        } else {
                            // no image to recover from (checkpointing off)
                            self.finish(GridOutcome::ClientLost, EndReason::ClientLost, ctx);
                            return;
                        }
                    }
                    if grant.is_some() {
                        self.commit(
                            ctx.now(),
                            JournalRecord::GrantClose {
                                requester,
                                free_peer: false,
                            },
                        );
                    }
                    if already_done {
                        // closing the grant may have been the last thing
                        // holding off an all-idle termination
                        self.check_termination(ctx);
                    }
                }
                self.note_activity();
                self.drain_backlog(ctx);
            }
            GridMsg::Result { result, problem } => {
                self.stats.results += 1;
                let sat = matches!(result, SubResult::Sat(_));
                let node = self.me.0;
                self.obs.emit(ctx.now(), node, || Event::ResultReport {
                    client: from.0,
                    sat,
                });
                if self.core.grants.values().any(|(p, _)| *p == from) {
                    // this client is the peer of an in-flight transfer:
                    // its confirmation (Figure 3 message 4) is still on
                    // the wire and must not re-open the subproblem when
                    // it lands after this result
                    self.commit(
                        ctx.now(),
                        JournalRecord::EarlyResultNote {
                            client: from,
                            problem,
                        },
                    );
                }
                // a duplicate of an old result (client-side delivery
                // retries) must not idle a client that has since
                // been handed different work
                if self
                    .core
                    .clients
                    .get(&from)
                    .is_some_and(|i| i.problem == Some(problem) || i.problem.is_none())
                {
                    self.commit(ctx.now(), JournalRecord::ClientIdle { client: from });
                    // its subproblem is gone; an unanswered split request
                    // for it can never be granted
                    self.pending_split_req.remove(&from);
                }
                if self.core.backlog.contains(&from) {
                    self.commit(ctx.now(), JournalRecord::BacklogRemove { client: from });
                }
                match result {
                    SubResult::Sat(lits) => {
                        // the paper's master verifies the assignment stack
                        let mut a = self.formula.empty_assignment();
                        for l in lits {
                            a.assign_lit(l);
                        }
                        // variables eliminated by clause reduction may be
                        // unassigned; any value satisfies (they occur only
                        // in already-satisfied clauses)
                        for v in 0..self.formula.num_vars() {
                            let var = gridsat_cnf::Var(v as u32);
                            if a.value(var) == gridsat_cnf::Value::Unassigned {
                                a.set(var, gridsat_cnf::Value::False);
                            }
                        }
                        if self.formula.is_satisfied_by(&a) {
                            self.finish(GridOutcome::Sat(a), EndReason::Sat, ctx);
                        } else {
                            self.stats.verification_failures += 1;
                        }
                    }
                    SubResult::Unsat => {
                        self.dispatch_recoveries(ctx);
                        self.drain_backlog(ctx);
                        self.maybe_migrate(ctx);
                        self.check_termination(ctx);
                    }
                }
            }
            GridMsg::LoadReport { availability } => {
                if let Some(info) = self.core.clients.get_mut(&from) {
                    info.forecast.update(availability);
                }
            }
            // lease renewal; the blanket last_seen refresh above did the work
            GridMsg::Heartbeat => {}
            GridMsg::Requeue { spec, problem } => {
                // a client could not deliver a subproblem transfer; take
                // the search space back so it is not lost. The reliable
                // layer already discarded checksum-failing frames, so a
                // frame that does not open here is a decoder-level defect
                // in the sender — strike it and wait for its retry.
                let Ok(spec) = spec.open() else {
                    self.on_corrupt(from, ctx);
                    return;
                };
                if self.core.grants.contains_key(&from) {
                    self.commit(
                        ctx.now(),
                        JournalRecord::GrantClose {
                            requester: from,
                            free_peer: true,
                        },
                    );
                }
                // a thief handing back a stolen transfer closes that
                // steal (its SplitDone{ok:false} may still be in flight;
                // seen_steals dedups whichever lands second)
                if let Some(p) = problem {
                    if self.core.pending_steals.contains_key(&p) {
                        self.commit(ctx.now(), JournalRecord::StealAbort { problem: p });
                        self.stats.steals_aborted += 1;
                    }
                    // the sender may be handing back the very assignment
                    // we gave it — a Solve that raced with an intra-site
                    // steal making the client busy first. Release the
                    // roster entry, or all-idle termination waits forever
                    // on a cube the client is not actually working
                    if self
                        .core
                        .clients
                        .get(&from)
                        .is_some_and(|c| c.problem == Some(p))
                    {
                        self.commit(ctx.now(), JournalRecord::ClientIdle { client: from });
                    }
                }
                self.commit(
                    ctx.now(),
                    JournalRecord::RecoveryQueued {
                        recovery: RecoverySpec {
                            spec,
                            source: problem,
                        },
                    },
                );
                self.stats.requeues += 1;
                self.dispatch_recoveries(ctx);
                self.drain_backlog(ctx);
            }
            GridMsg::CheckpointMsg {
                problem,
                checkpoint,
            } => {
                if self.config.checkpoint != CheckpointMode::Off {
                    if let Some(info) = self.core.clients.get(&from) {
                        // Reordering guard: only keep a checkpoint for
                        // the subproblem the client is known to hold. A
                        // Receiving peer's adopt-time checkpoint usually
                        // beats the transfer confirmation here, so it
                        // also teaches us the subproblem id early.
                        let fresh =
                            info.problem == Some(problem) || info.state == ClientState::Receiving;
                        if fresh {
                            let learn_problem = info.state == ClientState::Receiving;
                            let heavy = matches!(*checkpoint, Checkpoint::Heavy { .. });
                            self.commit(
                                ctx.now(),
                                JournalRecord::CheckpointAccept {
                                    client: from,
                                    problem,
                                    checkpoint: *checkpoint,
                                    learn_problem,
                                },
                            );
                            let node = self.me.0;
                            self.obs.emit(ctx.now(), node, || Event::CheckpointSaved {
                                client: from.0,
                                heavy,
                            });
                        }
                    }
                }
            }
            GridMsg::JournalAck { next } => {
                if let Some(link) = self.standby.as_mut() {
                    if link.node == from {
                        if next > link.acked {
                            link.acked = next;
                        } else if next == link.acked && next < link.sent {
                            // duplicate ack with records outstanding: the
                            // standby rejected something past `next` (a
                            // corrupt record, or a gap) and is asking for
                            // the suffix again — rewind the ship cursor
                            link.sent = next;
                        }
                    }
                }
            }
            // a Takeover or JournalBatch reaching an alive master is the
            // split-brain race (the standby promoted while we were merely
            // slow); clients follow whoever spoke last, so staying silent
            // and continuing to ship our own journal is the safe move
            GridMsg::Takeover | GridMsg::JournalBatch { .. } => {}
            GridMsg::Adopt {
                memory,
                availability,
                problem,
                checkpoint,
            } => {
                // re-registration with in-progress state after a takeover
                let speed = self.host_info.get(&from).map(|(s, _)| *s).unwrap_or(1.0);
                let busy = problem.is_some();
                self.commit(
                    ctx.now(),
                    JournalRecord::AdoptClaim {
                        client: from,
                        memory,
                        speed,
                        availability,
                        busy,
                        problem,
                        checkpoint: checkpoint.map(|b| *b),
                        at: ctx.now(),
                    },
                );
                self.broadcast_peers(ctx);
                let node = self.me.0;
                self.obs
                    .emit(ctx.now(), node, || Event::ClientLaunch { client: from.0 });
                self.dispatch_recoveries(ctx);
                self.drain_backlog(ctx);
                self.note_activity();
            }
            // a subproblem transfer addressed to this node's retired
            // client role can still land after a promotion (the dead
            // master brokered the split): recover the cube instead of
            // dropping it
            GridMsg::Subproblem { spec, problem, .. } => {
                let Ok(spec) = spec.open() else {
                    self.on_corrupt(from, ctx);
                    return;
                };
                self.stats.recoveries += 1;
                self.commit(
                    ctx.now(),
                    JournalRecord::RecoveryQueued {
                        recovery: RecoverySpec {
                            spec,
                            source: Some(problem),
                        },
                    },
                );
                self.dispatch_recoveries(ctx);
            }
            // clause-share gossip addressed to this host's retired client
            // can still be in flight when a standby promotes; sharing is
            // lossy best-effort traffic, so it is dropped, not an error
            GridMsg::Share { .. } => {}
            // client- or sub-master-bound messages
            GridMsg::Solve { .. }
            | GridMsg::SplitGrant { .. }
            | GridMsg::Migrate { .. }
            | GridMsg::Peers { .. }
            | GridMsg::StealRequest
            | GridMsg::StealTicket { .. }
            | GridMsg::Steal { .. }
            | GridMsg::StealRefused { .. }
            | GridMsg::OfferSolicit
            | GridMsg::Terminate(_) => {
                debug_assert!(false, "master got client message from {from}");
            }
        }
        self.ship_journal(ctx, false);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<GridMsg>) {
        if self.outcome.is_some() {
            ctx.idle();
            return;
        }
        self.telemetry.sample_queue(self.queue_depth());
        self.expire_leases(ctx);
        if self.outcome.is_some() {
            return;
        }
        self.dispatch_recoveries(ctx);
        self.drain_backlog(ctx);
        self.maybe_migrate(ctx);
        self.check_termination(ctx);
        self.note_activity();
        // keepalive: an empty batch tells the standby we are alive even
        // when nothing was decided this period
        self.ship_journal(ctx, true);
        if self.outcome.is_none() {
            ctx.schedule_tick(self.config.master_period);
        }
    }

    fn on_node_down(&mut self, node: NodeId, ctx: &mut Ctx<GridMsg>) {
        if self.outcome.is_some() {
            return;
        }
        // a dead sub-master cannot answer a solicit
        self.solicit_credits.remove(&node);
        self.handle_client_loss(node, ctx);
        self.ship_journal(ctx, false);
    }
}

#[cfg(test)]
mod tests; // see master/tests.rs
