//! The GridSAT master: resource manager, client manager and scheduler
//! (paper Section 3.3), work backlog and migration (Section 3.4).
//!
//! The master never solves; it reads the problem, hands it to the first
//! registered client, brokers splits toward the best-ranked idle
//! resources, keeps a backlog when everything is busy, verifies reported
//! models against the original formula, and declares UNSAT when every
//! client has gone idle.

use crate::config::{CheckpointMode, GridConfig, SchedPolicy};
use crate::msg::{Checkpoint, EndReason, GridMsg, ProblemId, SubResult};
use gridsat_cnf::{Assignment, Formula};
use gridsat_grid::{Ctx, NodeId, Process, Site};
use gridsat_nws::{Adaptive, Forecaster};
use gridsat_obs::{Event, MetricsRegistry, Obs};
use gridsat_solver::SplitSpec;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Final outcome of a GridSAT run.
#[derive(Clone, Debug, PartialEq)]
pub enum GridOutcome {
    /// Verified satisfying assignment.
    Sat(Assignment),
    /// Every subproblem refuted ("all the clients are idle").
    Unsat,
    /// Overall cap expired.
    TimeOut,
    /// A busy client was lost without checkpointing.
    ClientLost,
    /// The simulation went quiescent (event queue drained) while the
    /// master still had open subproblems: a control message was lost and
    /// never recovered. A correct reliability layer makes this
    /// unreachable — it is a detector, not a legitimate end state.
    Wedged,
}

impl GridOutcome {
    pub fn table_cell(&self) -> String {
        match self {
            GridOutcome::Sat(_) => "SAT".into(),
            GridOutcome::Unsat => "UNSAT".into(),
            GridOutcome::TimeOut => "TIME_OUT".into(),
            GridOutcome::ClientLost => "CLIENT_LOST".into(),
            GridOutcome::Wedged => "WEDGED".into(),
        }
    }
}

/// Master-side counters for the experiment report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MasterStats {
    /// Peak number of simultaneously busy clients (the paper's
    /// "Max # of clients" column).
    pub max_active_clients: usize,
    /// Splits successfully brokered.
    pub splits: u64,
    /// Split requests that had to wait in the backlog.
    pub backlogged: u64,
    /// Migrations directed.
    pub migrations: u64,
    /// SAT reports whose verification failed (must stay 0).
    pub verification_failures: u64,
    /// Subproblem results received.
    pub results: u64,
    /// Recoveries from checkpoints (extension).
    pub recoveries: u64,
    /// Client leases expired by missed heartbeats (reliability
    /// extension).
    pub lease_expiries: u64,
    /// Subproblems taken back after an undeliverable assignment or
    /// transfer (reliability extension).
    pub requeues: u64,
}

impl MasterStats {
    /// Merge another master's counters (used when aggregating campaign
    /// runs). Exhaustively destructured so a new field that isn't merged
    /// is a compile error, not a silently-lost count.
    pub fn absorb(&mut self, other: &MasterStats) {
        let MasterStats {
            max_active_clients,
            splits,
            backlogged,
            migrations,
            verification_failures,
            results,
            recoveries,
            lease_expiries,
            requeues,
        } = *other;
        self.max_active_clients = self.max_active_clients.max(max_active_clients);
        self.splits += splits;
        self.backlogged += backlogged;
        self.migrations += migrations;
        self.verification_failures += verification_failures;
        self.results += results;
        self.recoveries += recoveries;
        self.lease_expiries += lease_expiries;
        self.requeues += requeues;
    }

    /// Bridge every counter into a [`MetricsRegistry`] under `prefix`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let MasterStats {
            max_active_clients,
            splits,
            backlogged,
            migrations,
            verification_failures,
            results,
            recoveries,
            lease_expiries,
            requeues,
        } = *self;
        reg.gauge_set(
            &format!("{prefix}.max_active_clients"),
            max_active_clients as f64,
        );
        reg.counter_add(&format!("{prefix}.splits"), splits);
        reg.counter_add(&format!("{prefix}.backlogged"), backlogged);
        reg.counter_add(&format!("{prefix}.migrations"), migrations);
        reg.counter_add(
            &format!("{prefix}.verification_failures"),
            verification_failures,
        );
        reg.counter_add(&format!("{prefix}.results"), results);
        reg.counter_add(&format!("{prefix}.recoveries"), recoveries);
        reg.counter_add(&format!("{prefix}.lease_expiries"), lease_expiries);
        reg.counter_add(&format!("{prefix}.requeues"), requeues);
    }
}

/// A client's scheduling state as the master sees it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ClientState {
    /// Registered, no work.
    Idle,
    /// A subproblem transfer to this client is in flight.
    Receiving,
    /// Solving a subproblem.
    Busy,
}

/// What an in-flight grant is for.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum GrantKind {
    Split,
    Migrate,
}

struct ClientInfo {
    state: ClientState,
    memory: usize,
    speed: f64,
    forecast: Adaptive,
    /// When the client's current subproblem was assigned.
    problem_since: f64,
    /// Identity of the client's current subproblem, as far as the master
    /// knows (refreshed by dispatches, split confirmations and requests).
    problem: Option<ProblemId>,
    /// Last checkpoint uploaded by this client (extension).
    checkpoint: Option<Checkpoint>,
    /// Simulated second of the last message from this client; heartbeats
    /// keep it fresh so the master can expire silent clients
    /// (reliability extension).
    last_seen: f64,
}

/// The master process. Lives on node 0 of the testbed.
pub struct Master {
    formula: Formula,
    config: GridConfig,
    /// Static host information from the Grid information service
    /// (MDS-style): peak speed and site.
    host_info: BTreeMap<NodeId, (f64, Site)>,
    clients: BTreeMap<NodeId, ClientInfo>,
    backlog: VecDeque<NodeId>,
    /// requester -> (peer, kind) for in-flight grants.
    grants: BTreeMap<NodeId, (NodeId, GrantKind)>,
    first_problem_sent: bool,
    /// Set by the first `on_start`; a second call means the master node
    /// was restarted, which grants every client a fresh lease (their
    /// heartbeats could not have reached us while we were down).
    started: bool,
    /// Counter for subproblem ids minted by the master (dispatches).
    minted: u32,
    outcome: Option<GridOutcome>,
    finished_at: f64,
    rng_state: u64,
    last_migration: f64,
    /// Subproblems recovered from checkpoints of lost clients, awaiting
    /// an idle client (extension).
    pending_recovery: VecDeque<SplitSpec>,
    /// Results that arrived before the transfer confirmation that would
    /// have marked their sender Busy (at-least-once delivery reorders).
    /// The late confirmation consumes the entry instead of resurrecting
    /// an already-finished subproblem.
    early_results: BTreeSet<(NodeId, ProblemId)>,
    pub stats: MasterStats,
    /// Event-tracing handle (disabled by default).
    obs: Obs,
}

/// One client's row in a [`MasterSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClientSnapshot {
    pub id: u32,
    pub state: ClientState,
    /// Simulated second the client's current subproblem was assigned.
    pub problem_since: f64,
    pub has_checkpoint: bool,
}

/// Structured, serializable snapshot of the master's scheduler state
/// (replaces the old free-text `debug_state` dump). `Display` renders
/// the same human-readable summary the dump used to give.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct MasterSnapshot {
    pub clients: Vec<ClientSnapshot>,
    /// Requesters waiting for an idle peer, in queue order.
    pub backlog: Vec<u32>,
    /// In-flight grants as `(requester, peer, kind)`.
    pub grants: Vec<(u32, u32, GrantKind)>,
    /// Recovered subproblems awaiting an idle client.
    pub pending_recoveries: usize,
    /// The outcome's table cell, once decided.
    pub outcome: Option<String>,
    pub stats: MasterStats,
}

impl std::fmt::Display for MasterSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in &self.clients {
            if c.state != ClientState::Idle {
                writeln!(
                    f,
                    "n{}: {:?} since {:.0}{}",
                    c.id,
                    c.state,
                    c.problem_since,
                    if c.has_checkpoint { " [ckpt]" } else { "" }
                )?;
            }
        }
        writeln!(f, "backlog: {:?}", self.backlog)?;
        writeln!(f, "grants: {:?}", self.grants)?;
        if let Some(outcome) = &self.outcome {
            writeln!(f, "outcome: {outcome}")?;
        }
        Ok(())
    }
}

impl Master {
    /// `host_info` is the static per-host information (speed, site) the
    /// paper's master culls from the Grid information system.
    pub fn new(
        formula: Formula,
        config: GridConfig,
        host_info: BTreeMap<NodeId, (f64, Site)>,
    ) -> Master {
        let rng_state = match config.scheduler {
            SchedPolicy::Random(seed) => seed | 1,
            _ => 1,
        };
        Master {
            formula,
            config,
            host_info,
            clients: BTreeMap::new(),
            backlog: VecDeque::new(),
            grants: BTreeMap::new(),
            first_problem_sent: false,
            started: false,
            minted: 0,
            outcome: None,
            finished_at: 0.0,
            rng_state,
            last_migration: f64::NEG_INFINITY,
            pending_recovery: VecDeque::new(),
            early_results: BTreeSet::new(),
            stats: MasterStats::default(),
            obs: Obs::default(),
        }
    }

    /// Install an event-tracing handle: the master emits its scheduling
    /// decisions (launch, assign, split, backlog, migrate, checkpoint,
    /// result, outcome) into it.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The run's outcome, once decided.
    pub fn outcome(&self) -> Option<&GridOutcome> {
        self.outcome.as_ref()
    }

    /// Simulated second at which the outcome was decided.
    pub fn finished_at(&self) -> f64 {
        self.finished_at
    }

    /// Structured snapshot of scheduler state (serializable; `Display`
    /// renders the human-readable form).
    pub fn snapshot(&self) -> MasterSnapshot {
        MasterSnapshot {
            clients: self
                .clients
                .iter()
                .map(|(id, c)| ClientSnapshot {
                    id: id.0,
                    state: c.state,
                    problem_since: c.problem_since,
                    has_checkpoint: c.checkpoint.is_some(),
                })
                .collect(),
            backlog: self.backlog.iter().map(|id| id.0).collect(),
            grants: self
                .grants
                .iter()
                .map(|(r, (p, k))| (r.0, p.0, *k))
                .collect(),
            pending_recoveries: self.pending_recovery.len(),
            outcome: self.outcome.as_ref().map(|o| o.table_cell()),
            stats: self.stats,
        }
    }

    fn rank(&self, id: NodeId, info: &ClientInfo) -> f64 {
        let availability = info.forecast.predict().unwrap_or(1.0).clamp(0.01, 1.0);
        let speed = self
            .host_info
            .get(&id)
            .map(|(s, _)| *s)
            .unwrap_or(info.speed);
        // memory as a small tie-break so better-provisioned hosts win
        speed * availability + info.memory as f64 * 1e-9
    }

    fn site_of(&self, id: NodeId) -> Option<Site> {
        self.host_info.get(&id).map(|(_, site)| *site)
    }

    /// Rank discounted by transfer locality: subproblem transfers are
    /// large, so a same-site target is worth more than a slightly faster
    /// remote one ("the master [can] select machines that are near the
    /// splitting client, leading to more efficient use of the available
    /// bandwidth", Section 3.4).
    fn placement_score(&self, id: NodeId, info: &ClientInfo, near: Option<Site>) -> f64 {
        let base = self.rank(id, info);
        match (near, self.site_of(id)) {
            (Some(a), Some(b)) if a != b => base * 0.4,
            _ => base,
        }
    }

    fn xorshift(&mut self) -> u64 {
        // deterministic scheduler randomness for the Random policy
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Pick an idle client per the configured policy; `near` biases the
    /// NWS policy toward transfer locality.
    fn pick_idle(&mut self, exclude: NodeId, near: Option<Site>) -> Option<NodeId> {
        let idle: Vec<NodeId> = self
            .clients
            .iter()
            .filter(|(id, c)| **id != exclude && c.state == ClientState::Idle)
            .map(|(id, _)| *id)
            .collect();
        if idle.is_empty() {
            return None;
        }
        match self.config.scheduler {
            SchedPolicy::NwsRank => idle.into_iter().max_by(|a, b| {
                let ra = self.placement_score(*a, &self.clients[a], near);
                let rb = self.placement_score(*b, &self.clients[b], near);
                ra.total_cmp(&rb).then(b.cmp(a)) // deterministic ties: lower id
            }),
            SchedPolicy::WorstRank => idle.into_iter().min_by(|a, b| {
                let ra = self.rank(*a, &self.clients[a]);
                let rb = self.rank(*b, &self.clients[b]);
                ra.total_cmp(&rb).then(a.cmp(b))
            }),
            SchedPolicy::Random(_) => {
                let i = (self.xorshift() % idle.len() as u64) as usize;
                Some(idle[i])
            }
        }
    }

    /// The longest-running busy client with a backlogged request
    /// ("the master splits clients which have been running the longest").
    fn pop_backlog(&mut self) -> Option<NodeId> {
        if self.backlog.is_empty() {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, id) in self.backlog.iter().enumerate() {
            let Some(info) = self.clients.get(id) else {
                continue;
            };
            if info.state != ClientState::Busy {
                continue;
            }
            match best {
                Some((_, t)) if info.problem_since >= t => {}
                _ => best = Some((i, info.problem_since)),
            }
        }
        let (i, _) = best?;
        self.backlog.remove(i)
    }

    fn grant_split(&mut self, requester: NodeId, ctx: &mut Ctx<GridMsg>) -> bool {
        if self.grants.contains_key(&requester) {
            return false;
        }
        let Some(problem) = self.clients.get(&requester).and_then(|c| c.problem) else {
            return false;
        };
        let near = self.site_of(requester);
        let Some(peer) = self.pick_idle(requester, near) else {
            if !self.backlog.contains(&requester) {
                self.backlog.push_back(requester);
                self.stats.backlogged += 1;
                let depth = self.backlog.len() as u64;
                self.obs.emit(ctx.now(), 0, || Event::BacklogEnqueue {
                    client: requester.0,
                    depth,
                });
            }
            return false;
        };
        self.clients.get_mut(&peer).expect("picked idle").state = ClientState::Receiving;
        self.grants.insert(requester, (peer, GrantKind::Split));
        ctx.send(requester, GridMsg::SplitGrant { peer, problem });
        true
    }

    /// Serve backlog entries while idle clients remain.
    fn drain_backlog(&mut self, ctx: &mut Ctx<GridMsg>) {
        while let Some(requester) = self.pop_backlog() {
            if !self.grant_split(requester, ctx) {
                break; // no idle peers left (requester went back to backlog)
            }
            let depth = self.backlog.len() as u64;
            self.obs.emit(ctx.now(), 0, || Event::BacklogDequeue {
                client: requester.0,
                depth,
            });
        }
    }

    /// Migration policy: if a busy client sits on a much weaker host
    /// than the best idle one, move its problem (paper Section 3.4).
    fn maybe_migrate(&mut self, ctx: &mut Ctx<GridMsg>) {
        if !self.config.migration || !self.backlog.is_empty() {
            return;
        }
        // Migration is a coarse, rare event in the paper ("when the
        // cluster becomes free"): require a field of idle resources and
        // space out transfers, which are expensive.
        let cooldown = (2.0 * self.config.min_split_timeout).max(200.0);
        if ctx.now() - self.last_migration < cooldown {
            return;
        }
        // Only rescue stragglers during the drain phase: a migrated
        // subproblem restarts its search (keeping learned clauses), so
        // mid-run migration costs more than it saves.
        let idle_count = self
            .clients
            .values()
            .filter(|c| c.state == ClientState::Idle)
            .count();
        let busy = self.busy_count();
        if idle_count < 3 || busy * 4 > self.clients.len() {
            return;
        }
        // weakest busy client, not already involved in a grant and old
        // enough on its subproblem that moving it is worth the transfer
        let min_age = (2.0 * self.config.min_split_timeout).max(200.0);
        let mut weakest: Option<(NodeId, f64)> = None;
        for (id, c) in &self.clients {
            if c.state != ClientState::Busy || self.grants.contains_key(id) {
                continue;
            }
            if ctx.now() - c.problem_since < min_age {
                continue;
            }
            let r = self.rank(*id, c);
            if weakest.map(|(_, wr)| r < wr).unwrap_or(true) {
                weakest = Some((*id, r));
            }
        }
        let Some((weak_id, weak_rank)) = weakest else {
            return;
        };
        // migration targets are always rank-picked (even under the
        // Random/Worst scheduler ablations): moving a hard subproblem to a
        // weak host would defeat the point
        let near = self.site_of(weak_id);
        let best_idle = self
            .clients
            .iter()
            .filter(|(id, c)| **id != weak_id && c.state == ClientState::Idle)
            .max_by(|(a, ca), (b, cb)| {
                let ra = self.placement_score(**a, ca, near);
                let rb = self.placement_score(**b, cb, near);
                ra.total_cmp(&rb).then(b.cmp(a))
            })
            .map(|(id, _)| *id);
        let Some(best_idle) = best_idle else { return };
        let idle_rank = self.rank(best_idle, &self.clients[&best_idle]);
        let Some(problem) = self.clients.get(&weak_id).and_then(|c| c.problem) else {
            return;
        };
        if idle_rank >= weak_rank * self.config.migration_factor {
            self.clients.get_mut(&best_idle).expect("idle").state = ClientState::Receiving;
            self.grants.insert(weak_id, (best_idle, GrantKind::Migrate));
            ctx.send(
                weak_id,
                GridMsg::Migrate {
                    peer: best_idle,
                    problem,
                },
            );
            self.last_migration = ctx.now();
            self.stats.migrations += 1;
            self.obs.emit(ctx.now(), 0, || Event::Migrate {
                from: weak_id.0,
                to: best_idle.0,
            });
        }
    }

    fn busy_count(&self) -> usize {
        self.clients
            .values()
            .filter(|c| matches!(c.state, ClientState::Busy | ClientState::Receiving))
            .count()
    }

    fn note_activity(&mut self) {
        self.stats.max_active_clients = self.stats.max_active_clients.max(self.busy_count());
    }

    fn finish(&mut self, outcome: GridOutcome, reason: EndReason, ctx: &mut Ctx<GridMsg>) {
        if self.outcome.is_some() {
            return;
        }
        self.finished_at = ctx.now();
        let cell = outcome.table_cell();
        self.obs
            .emit(ctx.now(), 0, || Event::Outcome { outcome: cell });
        self.outcome = Some(outcome);
        for id in self.clients.keys().copied().collect::<Vec<_>>() {
            ctx.send(id, GridMsg::Terminate(reason));
        }
        ctx.shutdown();
    }

    fn check_termination(&mut self, ctx: &mut Ctx<GridMsg>) {
        if self.outcome.is_some() {
            return;
        }
        if ctx.now() >= self.config.overall_timeout {
            self.finish(GridOutcome::TimeOut, EndReason::TimeOut, ctx);
            return;
        }
        // "All the clients are idle" => unsatisfiable. Guard against
        // in-flight transfers via the Receiving state, open grants, and
        // queued recoveries.
        if self.first_problem_sent
            && self.busy_count() == 0
            && self.grants.is_empty()
            && self.pending_recovery.is_empty()
        {
            self.finish(GridOutcome::Unsat, EndReason::Unsat, ctx);
        }
    }

    /// Broadcast the registered-client list (clause-sharing fan-out).
    fn broadcast_peers(&mut self, ctx: &mut Ctx<GridMsg>) {
        let peers: Vec<NodeId> = self.clients.keys().copied().collect();
        for id in &peers {
            ctx.send(*id, GridMsg::Peers(peers.clone()));
        }
    }

    fn whole_problem(&self) -> SplitSpec {
        SplitSpec {
            num_vars: self.formula.num_vars(),
            assumptions: Vec::new(),
            clauses: self.formula.clauses().to_vec(),
        }
    }

    /// Rebuild a dispatchable subproblem from a recovery image.
    fn spec_from_checkpoint(&self, cp: Checkpoint) -> SplitSpec {
        match cp {
            Checkpoint::Light { level0 } => {
                // original clauses + recorded level-0 assignment
                let mut spec = self.whole_problem();
                spec.assumptions = level0;
                spec
            }
            Checkpoint::Heavy { level0, learned } => SplitSpec {
                num_vars: self.formula.num_vars(),
                assumptions: level0,
                clauses: learned, // export_clauses() includes originals
            },
        }
    }

    /// Recover a lost busy client from its checkpoint (extension).
    /// Returns `false` when no checkpoint exists (recovery impossible).
    fn recover(&mut self, lost: NodeId, ctx: &mut Ctx<GridMsg>) -> bool {
        let Some(info) = self.clients.get(&lost) else {
            return false;
        };
        let Some(cp) = info.checkpoint.clone() else {
            return false;
        };
        let spec = self.spec_from_checkpoint(cp);
        self.pending_recovery.push_back(spec);
        self.stats.recoveries += 1;
        self.dispatch_recoveries(ctx);
        true
    }

    /// Drop every open grant involving `node`, and free any still-tracked
    /// peer those grants had reserved: a Receiving reservation must never
    /// outlive the grant that made it, or the peer blocks the all-idle
    /// UNSAT condition forever.
    fn drop_grants_involving(&mut self, node: NodeId) {
        let dropped: Vec<NodeId> = self
            .grants
            .iter()
            .filter(|(r, (p, _))| **r == node || *p == node)
            .map(|(r, _)| *r)
            .collect();
        for requester in dropped {
            let Some((peer, _)) = self.grants.remove(&requester) else {
                continue;
            };
            if peer == node {
                continue;
            }
            if let Some(p) = self.clients.get_mut(&peer) {
                if p.state == ClientState::Receiving {
                    p.state = ClientState::Idle;
                }
            }
        }
    }

    /// A client is gone (node down or lease expired): free its resources
    /// and recover its subproblem if possible.
    fn handle_client_loss(&mut self, node: NodeId, ctx: &mut Ctx<GridMsg>) {
        let Some(info) = self.clients.get(&node) else {
            return;
        };
        self.early_results.retain(|(n, _)| *n != node);
        match info.state {
            ClientState::Idle => {
                // "When an idle client is killed ... the master becomes
                // aware of it and marks the resource as free."
                self.clients.remove(&node);
                self.backlog.retain(|id| *id != node);
                self.broadcast_peers(ctx);
            }
            ClientState::Receiving if self.config.reliability.is_some() => {
                // nothing to recover: the requester still holds the whole
                // subproblem, and its undeliverable transfer will come
                // back to us as a Requeue
                self.clients.remove(&node);
                self.backlog.retain(|id| *id != node);
                self.drop_grants_involving(node);
                self.broadcast_peers(ctx);
                self.drain_backlog(ctx);
            }
            ClientState::Busy | ClientState::Receiving => {
                // try checkpoint recovery; without it, the paper's current
                // implementation "will not tolerate a machine crash"
                if self.config.checkpoint != CheckpointMode::Off && self.recover(node, ctx) {
                    self.clients.remove(&node);
                    self.backlog.retain(|id| *id != node);
                    self.drop_grants_involving(node);
                    self.broadcast_peers(ctx);
                    self.dispatch_recoveries(ctx);
                    self.drain_backlog(ctx);
                } else {
                    self.finish(GridOutcome::ClientLost, EndReason::ClientLost, ctx);
                }
            }
        }
    }

    /// Expire clients whose lease (heartbeat_period x lease_misses) ran
    /// out: a partitioned or silently-dead client is treated exactly like
    /// a crashed one (reliability extension).
    fn expire_leases(&mut self, ctx: &mut Ctx<GridMsg>) {
        let Some(rel) = self.config.reliability else {
            return;
        };
        let lease = rel.heartbeat_period * f64::from(rel.lease_misses);
        let now = ctx.now();
        let expired: Vec<NodeId> = self
            .clients
            .iter()
            .filter(|(_, c)| now - c.last_seen > lease)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            self.stats.lease_expiries += 1;
            self.obs
                .emit(now, 0, || Event::LeaseExpire { client: id.0 });
            self.handle_client_loss(id, ctx);
            if self.outcome.is_some() {
                return;
            }
        }
    }

    /// A control message toward `to` exhausted its retry budget or its
    /// destination went down with the message unacked (reliability
    /// extension). Undo whatever the send was supposed to accomplish.
    pub fn on_undeliverable(&mut self, to: NodeId, msg: GridMsg, ctx: &mut Ctx<GridMsg>) {
        if self.outcome.is_some() {
            return;
        }
        match msg {
            GridMsg::Solve { spec, problem } => {
                // the assignment never arrived: take the subproblem back
                // and hand it to someone else
                if let Some(info) = self.clients.get_mut(&to) {
                    if info.problem == Some(problem) {
                        info.state = ClientState::Idle;
                        info.problem = None;
                        info.checkpoint = None;
                    }
                }
                self.pending_recovery.push_back(*spec);
                self.stats.requeues += 1;
                self.dispatch_recoveries(ctx);
            }
            GridMsg::SplitGrant { .. } | GridMsg::Migrate { .. } => {
                // the grant never reached the requester: forget it and
                // free the reserved peer
                if let Some((peer, _)) = self.grants.remove(&to) {
                    if let Some(p) = self.clients.get_mut(&peer) {
                        if p.state == ClientState::Receiving {
                            p.state = ClientState::Idle;
                        }
                    }
                }
                self.drain_backlog(ctx);
            }
            // peer lists are re-broadcast on every membership change and
            // a terminate to a dead client changes nothing
            _ => {}
        }
    }

    /// Initial recovery image for a subproblem the master dispatches
    /// itself: exactly the spec it is about to send, so a client crash
    /// before its first own checkpoint still leaves the search space
    /// recoverable.
    fn synth_checkpoint(&self, spec: &SplitSpec) -> Option<Checkpoint> {
        (self.config.checkpoint != CheckpointMode::Off).then(|| Checkpoint::Heavy {
            level0: spec.assumptions.clone(),
            learned: spec.clauses.clone(),
        })
    }

    /// Hand queued recovered subproblems to idle clients.
    fn dispatch_recoveries(&mut self, ctx: &mut Ctx<GridMsg>) {
        while !self.pending_recovery.is_empty() {
            let Some(target) = self.pick_idle(NodeId(u32::MAX), None) else {
                return;
            };
            let spec = self.pending_recovery.pop_front().expect("non-empty");
            self.minted += 1;
            let problem = ProblemId::new(NodeId(0), self.minted);
            let cp = self.synth_checkpoint(&spec);
            ctx.send(
                target,
                GridMsg::Solve {
                    spec: Box::new(spec),
                    problem,
                },
            );
            let info = self.clients.get_mut(&target).expect("idle");
            info.state = ClientState::Busy;
            info.problem_since = ctx.now();
            info.problem = Some(problem);
            info.checkpoint = cp;
            self.obs
                .emit(ctx.now(), 0, || Event::Assign { client: target.0 });
        }
    }
}

impl Process for Master {
    type Msg = GridMsg;

    fn on_start(&mut self, ctx: &mut Ctx<GridMsg>) {
        if self.started {
            // restart: clients kept heartbeating into the void while we
            // were down — give every lease a fresh start
            let now = ctx.now();
            for info in self.clients.values_mut() {
                info.last_seen = now;
            }
        }
        self.started = true;
        ctx.schedule_tick(self.config.master_period);
    }

    fn on_message(&mut self, from: NodeId, msg: GridMsg, ctx: &mut Ctx<GridMsg>) {
        if self.outcome.is_some() {
            return;
        }
        // any traffic renews the sender's lease, not just heartbeats
        if let Some(info) = self.clients.get_mut(&from) {
            info.last_seen = ctx.now();
        }
        match msg {
            GridMsg::Register {
                memory,
                availability,
            } => {
                let mut forecast = Adaptive::standard();
                forecast.update(availability);
                let speed = self.host_info.get(&from).map(|(s, _)| *s).unwrap_or(1.0);
                self.clients.insert(
                    from,
                    ClientInfo {
                        state: ClientState::Idle,
                        memory,
                        speed,
                        forecast,
                        problem_since: 0.0,
                        problem: None,
                        checkpoint: None,
                        last_seen: ctx.now(),
                    },
                );
                self.broadcast_peers(ctx);
                self.obs
                    .emit(ctx.now(), 0, || Event::ClientLaunch { client: from.0 });
                if !self.first_problem_sent {
                    // "The first client to register with the master is
                    // sent the entire problem to solve."
                    self.first_problem_sent = true;
                    let spec = self.whole_problem();
                    self.minted += 1;
                    let problem = ProblemId::new(NodeId(0), self.minted);
                    let cp = self.synth_checkpoint(&spec);
                    let info = self.clients.get_mut(&from).expect("registered");
                    info.state = ClientState::Busy;
                    info.problem_since = ctx.now();
                    info.problem = Some(problem);
                    info.checkpoint = cp;
                    ctx.send(
                        from,
                        GridMsg::Solve {
                            spec: Box::new(spec),
                            problem,
                        },
                    );
                    self.obs
                        .emit(ctx.now(), 0, || Event::Assign { client: from.0 });
                } else {
                    // a fresh resource may unblock the backlog
                    self.drain_backlog(ctx);
                }
                self.note_activity();
            }
            GridMsg::SplitRequest { problem } => {
                let busy = self
                    .clients
                    .get(&from)
                    .map(|c| c.state == ClientState::Busy)
                    .unwrap_or(false);
                if busy {
                    let info = self.clients.get_mut(&from).expect("busy");
                    if info.problem.is_none() {
                        // learn the requester's subproblem if we missed it
                        info.problem = Some(problem);
                    }
                    // grant only when the request names the subproblem we
                    // believe the client holds: a retransmitted request
                    // can land long after that subproblem was finished,
                    // and taking its word would regress our view. The
                    // client re-requests periodically, so a skipped grant
                    // only delays the split.
                    if info.problem == Some(problem) {
                        self.grant_split(from, ctx);
                    }
                }
            }
            GridMsg::SplitDone {
                requester,
                peer,
                ok,
                problem,
                checkpoint,
            } => {
                let grant = self.grants.get(&requester).copied();
                if from == requester {
                    // Figure 3 message (5): the requester's report
                    match (ok, grant) {
                        (false, Some((granted_peer, _))) => {
                            // transfer never happened; free the peer
                            debug_assert_eq!(granted_peer, peer);
                            if let Some(p) = self.clients.get_mut(&granted_peer) {
                                if p.state == ClientState::Receiving {
                                    p.state = ClientState::Idle;
                                }
                            }
                            self.grants.remove(&requester);
                        }
                        (true, Some((_, GrantKind::Split))) => {
                            // requester keeps its half on a fresh clock
                            if let Some(r) = self.clients.get_mut(&requester) {
                                r.problem_since = ctx.now();
                            }
                            self.stats.splits += 1;
                            self.obs.emit(ctx.now(), 0, || Event::Split {
                                requester: requester.0,
                                peer: peer.0,
                            });
                        }
                        (true, Some((_, GrantKind::Migrate))) => {
                            if let Some(r) = self.clients.get_mut(&requester) {
                                r.state = ClientState::Idle;
                            }
                        }
                        // peer's confirmation already closed the grant
                        (_, None) => {}
                    }
                } else if from == peer {
                    // Figure 3 message (4): the receiving peer's report.
                    // If the peer's result overtook this confirmation the
                    // subproblem is already finished; marking the peer
                    // Busy now would wedge the run waiting for a result
                    // that was consumed long ago.
                    let already_done =
                        problem.is_some_and(|p| self.early_results.remove(&(from, p)));
                    let grant_open = grant.is_some_and(|(p, _)| p == from);
                    if ok && !already_done {
                        if let Some(info) = self.clients.get_mut(&from) {
                            // a confirmation from a tracked peer with no
                            // open grant is a replay of one we already
                            // processed (our dedup window died with a
                            // restart); the subproblem it confirms has
                            // long been handled
                            if grant_open {
                                info.state = ClientState::Busy;
                                info.problem_since = ctx.now();
                                info.problem = problem;
                                // the confirmation bundles the peer's
                                // initial recovery image, so a client is
                                // never Busy without one — a crash at any
                                // point after this stays recoverable
                                if self.config.checkpoint != CheckpointMode::Off {
                                    if let Some(cp) = checkpoint {
                                        let heavy = matches!(*cp, Checkpoint::Heavy { .. });
                                        info.checkpoint = Some(*cp);
                                        self.obs.emit(ctx.now(), 0, || Event::CheckpointSaved {
                                            client: from.0,
                                            heavy,
                                        });
                                    }
                                }
                            }
                        } else if let Some(cp) = checkpoint {
                            // the peer's lease expired mid-transfer and it
                            // was deregistered — yet the transfer landed
                            // and it is now solving, untracked. Re-dispatch
                            // from the bundled image: duplicated work, but
                            // UNSAT must never close over a search space
                            // the master has lost sight of.
                            let spec = self.spec_from_checkpoint(*cp);
                            self.pending_recovery.push_back(spec);
                            self.stats.recoveries += 1;
                            self.dispatch_recoveries(ctx);
                        } else {
                            // no image to recover from (checkpointing off)
                            self.finish(GridOutcome::ClientLost, EndReason::ClientLost, ctx);
                            return;
                        }
                    }
                    self.grants.remove(&requester);
                    if already_done {
                        // closing the grant may have been the last thing
                        // holding off an all-idle termination
                        self.check_termination(ctx);
                    }
                }
                self.note_activity();
                self.drain_backlog(ctx);
            }
            GridMsg::Result { result, problem } => {
                self.stats.results += 1;
                let sat = matches!(result, SubResult::Sat(_));
                self.obs.emit(ctx.now(), 0, || Event::ResultReport {
                    client: from.0,
                    sat,
                });
                if self.grants.values().any(|(p, _)| *p == from) {
                    // this client is the peer of an in-flight transfer:
                    // its confirmation (Figure 3 message 4) is still on
                    // the wire and must not re-open the subproblem when
                    // it lands after this result
                    self.early_results.insert((from, problem));
                }
                if let Some(info) = self.clients.get_mut(&from) {
                    // a duplicate of an old result (client-side delivery
                    // retries) must not idle a client that has since
                    // been handed different work
                    if info.problem == Some(problem) || info.problem.is_none() {
                        info.state = ClientState::Idle;
                        info.checkpoint = None;
                        info.problem = None;
                    }
                }
                self.backlog.retain(|id| *id != from);
                match result {
                    SubResult::Sat(lits) => {
                        // the paper's master verifies the assignment stack
                        let mut a = self.formula.empty_assignment();
                        for l in lits {
                            a.assign_lit(l);
                        }
                        // variables eliminated by clause reduction may be
                        // unassigned; any value satisfies (they occur only
                        // in already-satisfied clauses)
                        for v in 0..self.formula.num_vars() {
                            let var = gridsat_cnf::Var(v as u32);
                            if a.value(var) == gridsat_cnf::Value::Unassigned {
                                a.set(var, gridsat_cnf::Value::False);
                            }
                        }
                        if self.formula.is_satisfied_by(&a) {
                            self.finish(GridOutcome::Sat(a), EndReason::Sat, ctx);
                        } else {
                            self.stats.verification_failures += 1;
                        }
                    }
                    SubResult::Unsat => {
                        self.dispatch_recoveries(ctx);
                        self.drain_backlog(ctx);
                        self.maybe_migrate(ctx);
                        self.check_termination(ctx);
                    }
                }
            }
            GridMsg::LoadReport { availability } => {
                if let Some(info) = self.clients.get_mut(&from) {
                    info.forecast.update(availability);
                }
            }
            // lease renewal; the blanket last_seen refresh above did the work
            GridMsg::Heartbeat => {}
            GridMsg::Requeue { spec } => {
                // a client could not deliver a subproblem transfer; take
                // the search space back so it is not lost
                if let Some((peer, _)) = self.grants.remove(&from) {
                    if let Some(p) = self.clients.get_mut(&peer) {
                        if p.state == ClientState::Receiving {
                            p.state = ClientState::Idle;
                        }
                    }
                }
                self.pending_recovery.push_back(*spec);
                self.stats.requeues += 1;
                self.dispatch_recoveries(ctx);
                self.drain_backlog(ctx);
            }
            GridMsg::CheckpointMsg {
                problem,
                checkpoint,
            } => {
                if self.config.checkpoint != CheckpointMode::Off {
                    if let Some(info) = self.clients.get_mut(&from) {
                        // Reordering guard: only keep a checkpoint for
                        // the subproblem the client is known to hold. A
                        // Receiving peer's adopt-time checkpoint usually
                        // beats the transfer confirmation here, so it
                        // also teaches us the subproblem id early.
                        let fresh =
                            info.problem == Some(problem) || info.state == ClientState::Receiving;
                        if fresh {
                            if info.state == ClientState::Receiving {
                                info.problem = Some(problem);
                            }
                            let heavy = matches!(*checkpoint, Checkpoint::Heavy { .. });
                            info.checkpoint = Some(*checkpoint);
                            self.obs.emit(ctx.now(), 0, || Event::CheckpointSaved {
                                client: from.0,
                                heavy,
                            });
                        }
                    }
                }
            }
            // client-bound messages
            GridMsg::Solve { .. }
            | GridMsg::SplitGrant { .. }
            | GridMsg::Migrate { .. }
            | GridMsg::Peers(_)
            | GridMsg::Terminate(_)
            | GridMsg::Subproblem { .. }
            | GridMsg::Share(_) => {
                debug_assert!(false, "master got client message from {from}");
            }
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<GridMsg>) {
        if self.outcome.is_some() {
            ctx.idle();
            return;
        }
        self.expire_leases(ctx);
        if self.outcome.is_some() {
            return;
        }
        self.dispatch_recoveries(ctx);
        self.drain_backlog(ctx);
        self.maybe_migrate(ctx);
        self.check_termination(ctx);
        self.note_activity();
        if self.outcome.is_none() {
            ctx.schedule_tick(self.config.master_period);
        }
    }

    fn on_node_down(&mut self, node: NodeId, ctx: &mut Ctx<GridMsg>) {
        if self.outcome.is_some() {
            return;
        }
        self.handle_client_loss(node, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsat_cnf::Clause;
    use gridsat_grid::{Action, NodeInfo};

    fn ctx(now: f64) -> Ctx<GridMsg> {
        Ctx::new(NodeInfo {
            id: NodeId(0),
            speed: 500.0,
            memory: 3 << 20,
            now,
            availability: 1.0,
        })
    }

    fn speeds(n: u32) -> BTreeMap<NodeId, (f64, Site)> {
        (1..=n)
            .map(|i| (NodeId(i), (100.0 * f64::from(i), Site::Ucsd)))
            .collect()
    }

    fn master() -> Master {
        Master::new(
            gridsat_cnf::paper::fig1_formula(),
            GridConfig::default(),
            speeds(4),
        )
    }

    fn register(m: &mut Master, id: u32, t: f64) -> Vec<Action<GridMsg>> {
        let mut cx = ctx(t);
        m.on_message(
            NodeId(id),
            GridMsg::Register {
                memory: 3 << 20,
                availability: 1.0,
            },
            &mut cx,
        );
        cx.take_actions()
    }

    #[test]
    fn first_registrant_gets_the_whole_problem() {
        let mut m = master();
        let actions = register(&mut m, 2, 0.0);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send { to: NodeId(2), msg: GridMsg::Solve { spec, .. } }
                if spec.assumptions.is_empty() && spec.clauses.len() == 9
        )));
        // second registrant gets peers but no problem
        let actions = register(&mut m, 3, 1.0);
        assert!(!actions.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: GridMsg::Solve { .. },
                ..
            }
        )));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: GridMsg::Peers(_),
                ..
            }
        )));
    }

    #[test]
    fn split_request_grants_best_ranked_idle_peer() {
        let mut m = master();
        register(&mut m, 1, 0.0); // gets the problem (busy)
        register(&mut m, 2, 0.0);
        register(&mut m, 3, 0.0);
        register(&mut m, 4, 0.0);
        let mut cx = ctx(1.0);
        m.on_message(
            NodeId(1),
            GridMsg::SplitRequest {
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let actions = cx.take_actions();
        // rank = speed * availability: node 4 is fastest idle
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send {
                to: NodeId(1),
                msg: GridMsg::SplitGrant {
                    peer: NodeId(4),
                    ..
                }
            }
        )));
    }

    #[test]
    fn no_idle_peer_means_backlog() {
        let mut m = master();
        register(&mut m, 1, 0.0);
        let mut cx = ctx(1.0);
        m.on_message(
            NodeId(1),
            GridMsg::SplitRequest {
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        assert!(cx.take_actions().is_empty());
        assert_eq!(m.backlog.len(), 1);
        assert_eq!(m.stats.backlogged, 1);

        // a registering client frees the backlog
        let actions = register(&mut m, 2, 2.0);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send {
                to: NodeId(1),
                msg: GridMsg::SplitGrant {
                    peer: NodeId(2),
                    ..
                }
            }
        )));
        assert!(m.backlog.is_empty());
    }

    #[test]
    fn failed_split_frees_the_peer() {
        let mut m = master();
        register(&mut m, 1, 0.0);
        register(&mut m, 2, 0.0);
        let mut cx = ctx(1.0);
        m.on_message(
            NodeId(1),
            GridMsg::SplitRequest {
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        assert_eq!(m.clients[&NodeId(2)].state, ClientState::Receiving);
        let mut cx = ctx(2.0);
        m.on_message(
            NodeId(1),
            GridMsg::SplitDone {
                requester: NodeId(1),
                peer: NodeId(2),
                ok: false,
                problem: None,
                checkpoint: None,
            },
            &mut cx,
        );
        assert_eq!(m.clients[&NodeId(2)].state, ClientState::Idle);
        assert!(m.grants.is_empty());
    }

    #[test]
    fn undeliverable_grant_frees_the_peer() {
        let mut m = master();
        register(&mut m, 1, 0.0);
        register(&mut m, 2, 0.0);
        let mut cx = ctx(1.0);
        m.on_message(
            NodeId(1),
            GridMsg::SplitRequest {
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        assert_eq!(m.clients[&NodeId(2)].state, ClientState::Receiving);
        // the grant toward node 1 exhausts its retry budget
        let mut cx = ctx(40.0);
        m.on_undeliverable(
            NodeId(1),
            GridMsg::SplitGrant {
                peer: NodeId(2),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        assert_eq!(m.clients[&NodeId(2)].state, ClientState::Idle);
        assert!(m.grants.is_empty());
    }

    #[test]
    fn undeliverable_assign_requeues_the_subproblem() {
        let mut m = master();
        let actions = register(&mut m, 1, 0.0);
        let spec = actions
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    msg: GridMsg::Solve { spec, .. },
                    ..
                } => Some(spec.clone()),
                _ => None,
            })
            .expect("first registrant gets the problem");
        register(&mut m, 2, 0.0);
        // the whole-problem assignment to node 1 never got through
        let mut cx = ctx(40.0);
        m.on_undeliverable(
            NodeId(1),
            GridMsg::Solve {
                spec,
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        assert_eq!(m.stats.requeues, 1);
        assert_eq!(m.clients[&NodeId(1)].state, ClientState::Idle);
        // the subproblem went straight back out to the idle node 2
        assert!(cx.take_actions().iter().any(|a| matches!(
            a,
            Action::Send {
                to: NodeId(2),
                msg: GridMsg::Solve { .. }
            }
        )));
        assert_eq!(m.clients[&NodeId(2)].state, ClientState::Busy);
        assert!(m.pending_recovery.is_empty());
    }

    #[test]
    fn requeue_message_returns_a_lost_transfer() {
        // reliability on, so a peer dying mid-transfer is not fatal
        let mut m = Master::new(
            gridsat_cnf::paper::fig1_formula(),
            GridConfig::chaos_hardened(),
            speeds(4),
        );
        register(&mut m, 1, 0.0);
        register(&mut m, 2, 0.0);
        register(&mut m, 3, 0.0);
        let mut cx = ctx(1.0);
        m.on_message(
            NodeId(1),
            GridMsg::SplitRequest {
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        let (peer, _) = m.grants[&NodeId(1)];
        // the peer died mid-transfer; the requester hands the half back
        let mut cx = ctx(2.0);
        m.on_node_down(peer, &mut cx);
        let mut cx = ctx(3.0);
        m.on_message(
            NodeId(1),
            GridMsg::Requeue {
                spec: Box::new(SplitSpec {
                    num_vars: 1,
                    assumptions: vec![(gridsat_cnf::Lit::pos(0), true)],
                    clauses: vec![],
                }),
            },
            &mut cx,
        );
        assert_eq!(m.stats.requeues, 1);
        assert!(m.grants.is_empty());
        // re-dispatched to the remaining idle client
        assert!(cx.take_actions().iter().any(|a| matches!(
            a,
            Action::Send {
                msg: GridMsg::Solve { .. },
                ..
            }
        )));
    }

    #[test]
    fn successful_split_protocol_transitions() {
        let mut m = master();
        register(&mut m, 1, 0.0);
        register(&mut m, 2, 0.0);
        let mut cx = ctx(1.0);
        m.on_message(
            NodeId(1),
            GridMsg::SplitRequest {
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        // message (5) from requester
        let mut cx = ctx(2.0);
        m.on_message(
            NodeId(1),
            GridMsg::SplitDone {
                requester: NodeId(1),
                peer: NodeId(2),
                ok: true,
                problem: Some(ProblemId::new(NodeId(1), 1)),
                checkpoint: None,
            },
            &mut cx,
        );
        assert_eq!(m.stats.splits, 1);
        assert_eq!(m.clients[&NodeId(2)].state, ClientState::Receiving);
        // message (4) from the peer completes the grant
        let mut cx = ctx(3.0);
        m.on_message(
            NodeId(2),
            GridMsg::SplitDone {
                requester: NodeId(1),
                peer: NodeId(2),
                ok: true,
                problem: Some(ProblemId::new(NodeId(1), 1)),
                checkpoint: None,
            },
            &mut cx,
        );
        assert_eq!(m.clients[&NodeId(2)].state, ClientState::Busy);
        assert!(m.grants.is_empty());
        assert_eq!(m.stats.max_active_clients, 2);
    }

    #[test]
    fn sat_result_is_verified_and_ends_the_run() {
        let mut m = master();
        register(&mut m, 1, 0.0);
        // a genuine model of the fig1 formula
        let f = gridsat_cnf::paper::fig1_formula();
        let model = gridsat_solver::driver::solve(
            &f,
            gridsat_solver::SolverConfig::default(),
            gridsat_solver::Limits::default(),
        );
        let lits = match model.outcome {
            gridsat_solver::Outcome::Sat(a) => a.to_lits(),
            _ => panic!(),
        };
        let mut cx = ctx(5.0);
        m.on_message(
            NodeId(1),
            GridMsg::Result {
                result: SubResult::Sat(lits),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        assert!(matches!(m.outcome(), Some(GridOutcome::Sat(_))));
        assert_eq!(m.stats.verification_failures, 0);
        let actions = cx.take_actions();
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: GridMsg::Terminate(EndReason::Sat),
                ..
            }
        )));
        assert!(actions.iter().any(|a| matches!(a, Action::Shutdown)));
    }

    #[test]
    fn bogus_sat_result_is_rejected() {
        let mut m = master();
        register(&mut m, 1, 0.0);
        let mut cx = ctx(5.0);
        // V14 false violates clause 9
        m.on_message(
            NodeId(1),
            GridMsg::Result {
                result: SubResult::Sat(vec![gridsat_cnf::Var(13).negative()]),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        assert_eq!(m.stats.verification_failures, 1);
        assert!(m.outcome().is_none());
    }

    #[test]
    fn all_idle_means_unsat() {
        let mut m = master();
        register(&mut m, 1, 0.0);
        let mut cx = ctx(5.0);
        m.on_message(
            NodeId(1),
            GridMsg::Result {
                result: SubResult::Unsat,
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        assert_eq!(m.outcome(), Some(&GridOutcome::Unsat));
        assert_eq!(m.finished_at(), 5.0);
    }

    #[test]
    fn overall_timeout_fires_on_tick() {
        let mut m = master();
        register(&mut m, 1, 0.0);
        let mut cx = ctx(6001.0);
        m.on_tick(&mut cx);
        assert_eq!(m.outcome(), Some(&GridOutcome::TimeOut));
    }

    #[test]
    fn busy_client_loss_without_checkpoint_ends_the_run() {
        let mut m = master();
        register(&mut m, 1, 0.0);
        let mut cx = ctx(3.0);
        m.on_node_down(NodeId(1), &mut cx);
        assert_eq!(m.outcome(), Some(&GridOutcome::ClientLost));
    }

    #[test]
    fn double_crash_recovers_from_light_then_heavy_checkpoint() {
        let mut m = Master::new(
            gridsat_cnf::paper::fig1_formula(),
            GridConfig {
                checkpoint: CheckpointMode::Heavy,
                ..GridConfig::default()
            },
            speeds(4),
        );
        register(&mut m, 1, 0.0); // busy with the whole problem
        register(&mut m, 2, 0.0);
        // crash 1: recover node 1 from a light checkpoint
        let light_level0 = vec![(gridsat_cnf::Lit::pos(0), true)];
        let p1 = m.clients[&NodeId(1)].problem.expect("assigned");
        let mut cx = ctx(10.0);
        m.on_message(
            NodeId(1),
            GridMsg::CheckpointMsg {
                problem: p1,
                checkpoint: Box::new(Checkpoint::Light {
                    level0: light_level0.clone(),
                }),
            },
            &mut cx,
        );
        let mut cx = ctx(20.0);
        m.on_node_down(NodeId(1), &mut cx);
        assert_eq!(m.stats.recoveries, 1);
        assert!(m.outcome().is_none());
        // the recovered subproblem went to the idle node 2, carrying the
        // checkpointed guiding path as its assumptions
        let actions = cx.take_actions();
        let spec = actions
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    to: NodeId(2),
                    msg: GridMsg::Solve { spec, .. },
                } => Some(spec.clone()),
                _ => None,
            })
            .expect("recovery dispatched");
        assert_eq!(spec.assumptions, light_level0);
        assert_eq!(spec.clauses.len(), 9); // light = original clauses
        assert_eq!(m.clients[&NodeId(2)].state, ClientState::Busy);
        // crash 2: the inheritor checkpoints heavily, then dies too
        let heavy_level0 = vec![
            (gridsat_cnf::Lit::pos(0), true),
            (gridsat_cnf::Lit::neg(1), false),
        ];
        let learned = vec![Clause::new([gridsat_cnf::Lit::pos(2)])];
        let p2 = m.clients[&NodeId(2)].problem.expect("recovery assigned");
        let mut cx = ctx(30.0);
        m.on_message(
            NodeId(2),
            GridMsg::CheckpointMsg {
                problem: p2,
                checkpoint: Box::new(Checkpoint::Heavy {
                    level0: heavy_level0.clone(),
                    learned: learned.clone(),
                }),
            },
            &mut cx,
        );
        let mut cx = ctx(40.0);
        m.on_node_down(NodeId(2), &mut cx);
        assert_eq!(m.stats.recoveries, 2);
        assert!(m.outcome().is_none());
        // no idle client yet: the spec waits in pending_recovery, so the
        // UNSAT detector must hold its fire
        assert_eq!(m.pending_recovery.len(), 1);
        let mut cx = ctx(41.0);
        m.check_termination(&mut cx);
        assert!(m.outcome().is_none());
        // a fresh registrant picks it up on the next housekeeping tick
        register(&mut m, 3, 50.0);
        let mut cx = ctx(55.0);
        m.on_tick(&mut cx);
        let actions = cx.take_actions();
        let spec = actions
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    to: NodeId(3),
                    msg: GridMsg::Solve { spec, .. },
                } => Some(spec.clone()),
                _ => None,
            })
            .expect("second recovery dispatched");
        // heavy = deeper guiding path plus the learned clauses
        assert_eq!(spec.assumptions, heavy_level0);
        assert_eq!(spec.clauses, learned);
        assert!(m.pending_recovery.is_empty());
    }

    #[test]
    fn silent_client_lease_expires_and_is_recovered() {
        let (obs, ring) = Obs::ring(64);
        let mut m = Master::new(
            gridsat_cnf::paper::fig1_formula(),
            GridConfig::chaos_hardened(),
            speeds(4),
        );
        m.set_obs(obs);
        register(&mut m, 1, 0.0); // busy with the whole problem
        register(&mut m, 2, 0.0);
        let p1 = m.clients[&NodeId(1)].problem.expect("assigned");
        let mut cx = ctx(5.0);
        m.on_message(
            NodeId(1),
            GridMsg::CheckpointMsg {
                problem: p1,
                checkpoint: Box::new(Checkpoint::Light { level0: vec![] }),
            },
            &mut cx,
        );
        // node 2 keeps renewing its lease; node 1 goes silent
        let mut cx = ctx(45.0);
        m.on_message(NodeId(2), GridMsg::Heartbeat, &mut cx);
        // lease = heartbeat_period 10 x lease_misses 3 = 30 s
        let mut cx = ctx(50.0);
        m.on_tick(&mut cx);
        assert_eq!(m.stats.lease_expiries, 1);
        assert_eq!(m.stats.recoveries, 1);
        assert!(!m.clients.contains_key(&NodeId(1)));
        assert_eq!(m.clients[&NodeId(2)].state, ClientState::Busy);
        assert!(m.outcome().is_none());
        let events = ring.lock().unwrap().events();
        assert!(events
            .iter()
            .any(|e| matches!(e.event, Event::LeaseExpire { client: 1 })));
    }

    #[test]
    fn idle_client_loss_is_tolerated() {
        let mut m = master();
        register(&mut m, 1, 0.0);
        register(&mut m, 2, 0.0);
        let mut cx = ctx(3.0);
        m.on_node_down(NodeId(2), &mut cx);
        assert!(m.outcome().is_none());
        assert!(!m.clients.contains_key(&NodeId(2)));
    }

    #[test]
    fn backlog_prefers_longest_running_requester() {
        let mut m = master();
        register(&mut m, 1, 0.0); // busy since 0
                                  // make 2 and 3 busy via manual state (simulating earlier splits)
        register(&mut m, 2, 0.0);
        register(&mut m, 3, 0.0);
        m.clients.get_mut(&NodeId(2)).unwrap().state = ClientState::Busy;
        m.clients.get_mut(&NodeId(2)).unwrap().problem_since = 10.0;
        m.clients.get_mut(&NodeId(3)).unwrap().state = ClientState::Busy;
        m.clients.get_mut(&NodeId(3)).unwrap().problem_since = 20.0;
        // all busy: requests back up (naming the subproblem the master
        // believes each client holds, as real clients do)
        for id in [2u32, 3, 1] {
            let problem = m.clients[&NodeId(id)]
                .problem
                .unwrap_or(ProblemId::new(NodeId(id), 1));
            let mut cx = ctx(30.0);
            m.on_message(NodeId(id), GridMsg::SplitRequest { problem }, &mut cx);
        }
        assert_eq!(m.backlog.len(), 3);
        // node 1 has been running longest (since 0.0)
        assert_eq!(m.pop_backlog(), Some(NodeId(1)));
        assert_eq!(m.pop_backlog(), Some(NodeId(2)));
        assert_eq!(m.pop_backlog(), Some(NodeId(3)));
    }

    #[test]
    fn snapshot_is_structured_and_displays_like_the_old_dump() {
        let mut m = master();
        register(&mut m, 1, 0.0); // busy with the whole problem
        register(&mut m, 2, 0.0);
        let snap = m.snapshot();
        assert_eq!(snap.clients.len(), 2);
        let busy = snap.clients.iter().find(|c| c.id == 1).unwrap();
        assert_eq!(busy.state, ClientState::Busy);
        assert!(!busy.has_checkpoint);
        assert_eq!(snap.backlog, Vec::<u32>::new());
        assert_eq!(snap.outcome, None);
        assert_eq!(snap.stats, m.stats);
        let text = snap.to_string();
        assert!(text.contains("n1: Busy since 0"));
        assert!(text.contains("backlog: []"));
        // snapshots of identical state compare equal (structured contract)
        let mut m2 = master();
        register(&mut m2, 1, 0.0);
        register(&mut m2, 2, 0.0);
        assert_eq!(m2.snapshot(), snap);
    }

    #[test]
    fn master_stats_absorb_is_lossless() {
        let full = MasterStats {
            max_active_clients: 3,
            splits: 1,
            backlogged: 2,
            migrations: 4,
            verification_failures: 5,
            results: 6,
            recoveries: 7,
            lease_expiries: 8,
            requeues: 9,
        };
        let mut acc = MasterStats::default();
        acc.absorb(&full);
        acc.absorb(&full);
        assert_eq!(
            acc,
            MasterStats {
                max_active_clients: 3, // max, not sum
                splits: 2,
                backlogged: 4,
                migrations: 8,
                verification_failures: 10,
                results: 12,
                recoveries: 14,
                lease_expiries: 16,
                requeues: 18,
            }
        );
        let mut reg = MetricsRegistry::new();
        acc.export_metrics(&mut reg, "master");
        assert_eq!(reg.counter("master.splits"), 2);
        assert_eq!(reg.counter("master.requeues"), 18);
        assert_eq!(reg.gauge("master.max_active_clients"), Some(3.0));
    }

    #[test]
    fn scheduling_events_reach_the_obs_sink() {
        let (obs, ring) = Obs::ring(256);
        let mut m = master();
        m.set_obs(obs);
        register(&mut m, 1, 0.0);
        register(&mut m, 2, 0.5);
        // backlog then drain: 2 is idle, so the split grants straight away
        let mut cx = ctx(1.0);
        m.on_message(
            NodeId(1),
            GridMsg::SplitRequest {
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let mut cx = ctx(2.0);
        m.on_message(
            NodeId(1),
            GridMsg::SplitDone {
                requester: NodeId(1),
                peer: NodeId(2),
                ok: true,
                problem: Some(ProblemId::new(NodeId(1), 1)),
                checkpoint: None,
            },
            &mut cx,
        );
        let events = ring.lock().unwrap().events();
        let count = |k: &str| events.iter().filter(|e| e.event.kind() == k).count();
        assert_eq!(count("client_launch"), 2);
        assert_eq!(count("assign"), 1);
        assert_eq!(count("split"), 1);
        let split = events.iter().find(|e| e.event.kind() == "split").unwrap();
        assert_eq!(split.t_s, 2.0);
        match split.event {
            Event::Split { requester, peer } => {
                assert_eq!((requester, peer), (1, 2));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn worst_rank_policy_picks_slowest() {
        let mut m = Master::new(
            gridsat_cnf::paper::fig1_formula(),
            GridConfig {
                scheduler: SchedPolicy::WorstRank,
                ..GridConfig::default()
            },
            speeds(4),
        );
        register(&mut m, 1, 0.0);
        register(&mut m, 2, 0.0);
        register(&mut m, 3, 0.0);
        register(&mut m, 4, 0.0);
        let mut cx = ctx(1.0);
        m.on_message(
            NodeId(1),
            GridMsg::SplitRequest {
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let actions = cx.take_actions();
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: GridMsg::SplitGrant {
                    peer: NodeId(2),
                    ..
                },
                ..
            }
        )));
    }
}
