//! GridSAT run configuration.

use serde::{Deserialize, Serialize};

/// How the master picks the idle resource for a split (the scheduler
/// ablation; the paper uses NWS-style ranking).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Rank by forecast availability x speed, memory as tie-break
    /// (paper Section 3.3).
    NwsRank,
    /// Uniform random among idle resources (seeded).
    Random(u64),
    /// Deliberately pick the worst-ranked resource (ablation lower bound).
    WorstRank,
}

/// How the share-length limit is chosen (the paper leaves automatic
/// determination as an open problem: "we do not yet have a way of
/// determining the length of the clauses to share automatically").
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum ShareTuning {
    /// Use the configured limit as-is (the paper's mode).
    Fixed,
    /// Adapt the limit between `min` and `max`: when merged foreign
    /// clauses rarely produce implications, tighten; when most do, widen
    /// (extension implementing the paper's future-work item).
    Adaptive { min: usize, max: usize },
}

/// Checkpointing mode (paper Section 3.4; extension, off by default).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CheckpointMode {
    Off,
    /// Level-0 assignments only.
    Light,
    /// Level 0 plus learned clauses.
    Heavy,
}

/// Reliable-delivery and failure-detection tunables (robustness
/// extension; the paper's protocol assumes TCP and concedes it "will
/// not tolerate a machine crash").
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct ReliabilityConfig {
    /// Base retransmit time-out for control messages, seconds.
    pub rto_s: f64,
    /// Bandwidth assumed when scaling the time-out with message size
    /// (matches the WAN floor, so in-flight transfers are never
    /// retransmitted spuriously).
    pub rto_bytes_per_s: f64,
    /// Ceiling on exponential retransmit backoff, seconds.
    pub backoff_cap_s: f64,
    /// Retransmissions before a message is declared undeliverable.
    pub max_retries: u32,
    /// Retransmit jitter fraction (seeded; avoids retry storms).
    pub jitter_frac: f64,
    /// Client heartbeat period, seconds.
    pub heartbeat_period: f64,
    /// Consecutive missed heartbeats before the master expires a
    /// client's lease and treats it as lost.
    pub lease_misses: u32,
    /// Checksum-failing deliveries attributed to one peer before the
    /// master quarantines it (deregisters it and recovers its work) —
    /// a link that mangles this much traffic is indistinguishable from
    /// a byzantine or dying host. High enough that ambient bit rot on a
    /// healthy peer never trips it within a run (integrity extension).
    #[serde(default = "default_quarantine_strikes")]
    pub quarantine_strikes: u32,
}

fn default_quarantine_strikes() -> u32 {
    40
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            rto_s: 5.0,
            rto_bytes_per_s: 4_000.0,
            backoff_cap_s: 60.0,
            max_retries: 5,
            jitter_frac: 0.1,
            heartbeat_period: 10.0,
            lease_misses: 3,
            quarantine_strikes: default_quarantine_strikes(),
        }
    }
}

/// Master failover (robustness extension). A designated standby client
/// tails the master's write-ahead journal over the control plane and
/// promotes itself to master when the journal feed goes quiet for
/// longer than the grace period.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct FailoverConfig {
    /// Node that doubles as the journal-tailing standby.
    pub standby_node: u32,
    /// Silence (no journal batches, not even keepalives) the standby
    /// tolerates before promoting itself, seconds.
    pub promote_grace_s: f64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            standby_node: 1,
            promote_grace_s: 20.0,
        }
    }
}

/// Hierarchical control plane (scaling extension): per-site sub-masters
/// broker split traffic locally via steal tickets, escalating to the
/// root master only when a site has no idle capacity. The root still
/// owns the journal, the conservation audit, and the global verdict.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Period at which an idle client (re-)announces itself to its
    /// sub-master, seconds. Also the cadence of its idle housekeeping
    /// tick while stealing is possible.
    pub steal_period_s: f64,
    /// Minimum spacing between a sub-master's escalations of unmatched
    /// split offers to the root, seconds. Rate-limits the root-bound
    /// control stream when a whole site is saturated.
    pub escalate_period_s: f64,
    /// Period of sub-master site-status telemetry to the root, seconds.
    pub status_period_s: f64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            steal_period_s: 10.0,
            escalate_period_s: 60.0,
            status_period_s: 120.0,
        }
    }
}

/// Tunables of a GridSAT run. Defaults reproduce the paper's first
/// experiment set (share limit 10, 100-second split time-out floor).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridConfig {
    /// Maximum length of shared learned clauses (10 in experiment set 1,
    /// 3 in set 2). `None` disables sharing (ablation).
    pub share_len_limit: Option<usize>,
    /// Additional LBD (glue) ceiling on shared clauses — a HordeSat-style
    /// quality filter layered on the paper's length limit. `None` (the
    /// paper's behaviour) shares on length alone.
    pub share_lbd_limit: Option<u32>,
    /// Floor for the client's split time-out ("set to 100 seconds").
    pub min_split_timeout: f64,
    /// Overall execution cap in simulated seconds (6000 solvable /
    /// 12000 challenge in the paper).
    pub overall_timeout: f64,
    /// Fraction of host memory a client's solver may use ("only use up
    /// to 60% of it").
    pub mem_fraction: f64,
    /// Minimum usable memory for a client to participate (the paper's
    /// 128 MB, scaled to model bytes).
    pub min_memory: usize,
    /// Seconds of solver work per client tick (scheduling granularity).
    pub work_quantum_s: f64,
    /// Period of NWS load reports from clients, seconds.
    pub load_report_period: f64,
    /// Master housekeeping period, seconds.
    pub master_period: f64,
    /// Scheduler policy.
    pub scheduler: SchedPolicy,
    /// Allow the master to migrate subproblems to better resources.
    pub migration: bool,
    /// A migration must improve the host rank by at least this factor.
    pub migration_factor: f64,
    /// Checkpointing (fault-tolerance extension).
    pub checkpoint: CheckpointMode,
    /// Checkpoint upload period, seconds.
    pub checkpoint_period: f64,
    /// Bandwidth a client assumes when estimating the cost of a
    /// subproblem it *sends* (the receive side measures directly).
    pub assumed_bw_bytes_per_s: f64,
    /// Share-limit tuning policy (extension; `Fixed` = paper behaviour).
    pub share_tuning: ShareTuning,
    /// Fan-out of the k-ary relay tree used for clause-share traffic.
    /// `Some(k)` routes each batch along a tree derived from the client
    /// roster (O(n) messages per batch, at most `k` sends per node);
    /// `None` is the paper's all-pairs broadcast (O(n²) per round).
    #[serde(default = "default_share_relay_branch")]
    pub share_relay_branch: Option<usize>,
    /// Reliable control-plane delivery + heartbeat leases. `None` (the
    /// default) runs the paper's bare protocol — the wire is then
    /// bit-identical to a build without the reliability layer.
    pub reliability: Option<ReliabilityConfig>,
    /// Journal-tailing standby master. `None` (the default, and the
    /// paper's behaviour) means a dead master wedges the run.
    #[serde(default)]
    pub failover: Option<FailoverConfig>,
    /// Hierarchical control plane: per-site sub-masters + intra-site
    /// work stealing. `None` (the default, and the paper's behaviour)
    /// routes every split request through the root master.
    #[serde(default)]
    pub hierarchy: Option<HierarchyConfig>,
    /// Run the search-space conservation auditor alongside the run,
    /// panicking with a counterexample guiding path if the outstanding
    /// cubes ever stop partitioning the search space exactly.
    #[serde(default)]
    pub audit: bool,
}

fn default_share_relay_branch() -> Option<usize> {
    Some(4)
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            share_len_limit: Some(10),
            share_lbd_limit: None,
            min_split_timeout: 100.0,
            overall_timeout: 6000.0,
            mem_fraction: 0.6,
            min_memory: 400 << 10, // scaled 128 MB
            work_quantum_s: 5.0,
            load_report_period: 60.0,
            master_period: 5.0,
            scheduler: SchedPolicy::NwsRank,
            migration: true,
            migration_factor: 2.0,
            checkpoint: CheckpointMode::Off,
            checkpoint_period: 300.0,
            assumed_bw_bytes_per_s: 4_000.0,
            share_tuning: ShareTuning::Fixed,
            share_relay_branch: default_share_relay_branch(),
            reliability: None,
            failover: None,
            hierarchy: None,
            audit: false,
        }
    }
}

impl GridConfig {
    /// The paper's first experiment set: share limit 10, 6000 s cap.
    pub fn experiment1() -> GridConfig {
        GridConfig::default()
    }

    /// First set, challenge benchmarks: 12000 s cap.
    pub fn experiment1_challenge() -> GridConfig {
        GridConfig {
            overall_timeout: 12000.0,
            ..GridConfig::default()
        }
    }

    /// The paper's second experiment set: share limit 3.
    pub fn experiment2(overall_timeout: f64) -> GridConfig {
        GridConfig {
            share_len_limit: Some(3),
            overall_timeout,
            ..GridConfig::default()
        }
    }

    /// Survive-anything profile for chaos runs: reliable control-plane
    /// delivery, heartbeat leases, and light checkpoints so a lost busy
    /// client is recovered instead of ending the run.
    pub fn chaos_hardened() -> GridConfig {
        GridConfig {
            reliability: Some(ReliabilityConfig::default()),
            checkpoint: CheckpointMode::Light,
            checkpoint_period: 30.0,
            ..GridConfig::default()
        }
    }

    /// Turn on the hierarchical control plane with default periods.
    pub fn hierarchical(mut self) -> GridConfig {
        self.hierarchy = Some(HierarchyConfig::default());
        self
    }

    /// Chaos profile that also survives losing the master: node 1 tails
    /// the journal as a standby and takes over after the grace period.
    pub fn failover_hardened() -> GridConfig {
        GridConfig {
            failover: Some(FailoverConfig::default()),
            ..GridConfig::chaos_hardened()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_parameters() {
        let e1 = GridConfig::experiment1();
        assert_eq!(e1.share_len_limit, Some(10));
        assert_eq!(e1.min_split_timeout, 100.0);
        assert_eq!(e1.overall_timeout, 6000.0);
        assert_eq!(e1.mem_fraction, 0.6);

        assert_eq!(GridConfig::experiment1_challenge().overall_timeout, 12000.0);

        let e2 = GridConfig::experiment2(200_000.0);
        assert_eq!(e2.share_len_limit, Some(3));
        assert_eq!(e2.overall_timeout, 200_000.0);

        // relay-tree fan-out is on by default with a small branch factor
        assert_eq!(e1.share_relay_branch, Some(4));

        // the paper presets run the bare protocol: reliability stays off
        assert!(e1.reliability.is_none());
        assert!(e2.reliability.is_none());
        let hardened = GridConfig::chaos_hardened();
        assert!(hardened.reliability.is_some());
        assert_eq!(hardened.checkpoint, CheckpointMode::Light);
        assert!(hardened.failover.is_none());

        let failover = GridConfig::failover_hardened();
        assert!(failover.reliability.is_some());
        let fo = failover.failover.expect("failover preset sets a standby");
        assert_eq!(fo.standby_node, 1);
        assert!(fo.promote_grace_s > 0.0);

        // the paper's control plane is flat; hierarchy is opt-in
        assert!(e1.hierarchy.is_none());
        let h = GridConfig::default().hierarchical();
        let hc = h.hierarchy.expect("hierarchical() sets the plane");
        assert!(hc.steal_period_s > 0.0);
        assert!(hc.escalate_period_s >= hc.steal_period_s);
    }
}
