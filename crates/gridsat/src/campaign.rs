//! Campaign helper: run the paper's methodology — a sequential baseline
//! against a GridSAT run — over any instance, as a library call.
//!
//! This is the comparison the paper's Table 1 performs per row; the
//! `table1` binary in `gridsat-bench` is a thin loop over this.

use crate::config::GridConfig;
use crate::experiment;
use crate::master::GridOutcome;
use gridsat_cnf::Formula;
use gridsat_grid::Testbed;
use gridsat_solver::{driver, Outcome, SolverConfig};

/// One instance's paper-style comparison row.
#[derive(Debug)]
pub struct ComparisonRow {
    /// Instance name.
    pub name: String,
    /// Sequential outcome (SAT/UNSAT/TIME_OUT/MEM_OUT).
    pub sequential: Outcome,
    /// Sequential cost in seconds at the reference speed.
    pub sequential_seconds: f64,
    /// Grid outcome.
    pub grid: GridOutcome,
    /// Grid time-to-solution in simulated seconds (the cap if unsolved).
    pub grid_seconds: f64,
    /// Speed-up when both solved (the paper's column).
    pub speedup: Option<f64>,
    /// The paper's "Max # of clients" column.
    pub max_clients: usize,
    /// Splits brokered during the grid run.
    pub splits: u64,
}

/// Parameters of a comparison.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Sequential solver configuration (the zChaff baseline).
    pub sequential_config: SolverConfig,
    /// Sequential work cap.
    pub sequential_max_work: u64,
    /// Work units per second on the reference host (for converting the
    /// sequential work cost to the paper's "seconds on the fastest
    /// dedicated machine").
    pub reference_speed: f64,
    /// The Grid testbed.
    pub testbed: Testbed,
    /// GridSAT configuration (caps, share limit, scheduler, ...).
    pub grid_config: GridConfig,
}

impl Comparison {
    /// Run the comparison on one instance.
    pub fn run(&self, formula: &Formula) -> ComparisonRow {
        let seq = driver::solve(
            formula,
            self.sequential_config.clone(),
            driver::Limits::with_max_work(self.sequential_max_work),
        );
        let sequential_seconds = seq.stats.work as f64 / self.reference_speed;
        let grid = experiment::run(formula, self.testbed.clone(), self.grid_config.clone());
        let speedup = match (&seq.outcome, &grid.outcome) {
            (Outcome::Sat(_) | Outcome::Unsat, GridOutcome::Sat(_) | GridOutcome::Unsat) => {
                Some(sequential_seconds / grid.seconds)
            }
            _ => None,
        };
        ComparisonRow {
            name: formula.name().unwrap_or("?").to_string(),
            sequential: seq.outcome,
            sequential_seconds,
            grid: grid.outcome,
            grid_seconds: grid.seconds,
            speedup,
            max_clients: grid.master.max_active_clients,
            splits: grid.master.splits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_row_on_a_small_instance() {
        let cmp = Comparison {
            sequential_config: SolverConfig::sequential_baseline(4 << 20),
            sequential_max_work: 18_000_000,
            reference_speed: 1000.0,
            testbed: Testbed::uniform(4, 1000.0, 3 << 20),
            grid_config: GridConfig {
                min_split_timeout: 5.0,
                ..GridConfig::default()
            },
        };
        let f = gridsat_satgen::php::php(8, 7);
        let row = cmp.run(&f);
        assert_eq!(row.sequential, Outcome::Unsat);
        assert!(matches!(row.grid, GridOutcome::Unsat));
        assert!(row.speedup.is_some());
        assert!(row.sequential_seconds > 0.0);
        assert!(row.max_clients >= 1);
        assert_eq!(row.name, "php-8-7");
    }

    #[test]
    fn unsolved_rows_have_no_speedup() {
        let cmp = Comparison {
            sequential_config: SolverConfig::sequential_baseline(4 << 20),
            sequential_max_work: 2_000, // absurdly small: TIME_OUT
            reference_speed: 1000.0,
            testbed: Testbed::uniform(2, 1000.0, 3 << 20),
            grid_config: GridConfig {
                overall_timeout: 1.0,
                ..GridConfig::default()
            },
        };
        let f = gridsat_satgen::php::php(9, 8);
        let row = cmp.run(&f);
        assert_eq!(row.sequential, Outcome::TimeOut);
        assert!(matches!(row.grid, GridOutcome::TimeOut));
        assert!(row.speedup.is_none());
    }
}
