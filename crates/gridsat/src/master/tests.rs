use super::*;
use crate::client::Client;
use crate::journal::SealedRecord;
use gridsat_cnf::Clause;
use gridsat_grid::{Action, NodeInfo};
use gridsat_solver::SplitSpec;

fn ctx_at(id: u32, now: f64) -> Ctx<GridMsg> {
    Ctx::new(NodeInfo {
        id: NodeId(id),
        speed: 500.0,
        memory: 3 << 20,
        now,
        availability: 1.0,
    })
}

fn ctx(now: f64) -> Ctx<GridMsg> {
    ctx_at(0, now)
}

fn speeds(n: u32) -> BTreeMap<NodeId, (f64, Site)> {
    (1..=n)
        .map(|i| (NodeId(i), (100.0 * f64::from(i), Site::Ucsd)))
        .collect()
}

fn master() -> Master {
    Master::new(
        gridsat_cnf::paper::fig1_formula(),
        GridConfig::default(),
        speeds(4),
    )
}

fn register(m: &mut Master, id: u32, t: f64) -> Vec<Action<GridMsg>> {
    let mut cx = ctx(t);
    m.on_message(
        NodeId(id),
        GridMsg::Register {
            memory: 3 << 20,
            availability: 1.0,
        },
        &mut cx,
    );
    cx.take_actions()
}

#[test]
fn first_registrant_gets_the_whole_problem() {
    let mut m = master();
    let actions = register(&mut m, 2, 0.0);
    assert!(actions.iter().any(|a| matches!(
        a,
        Action::Send { to: NodeId(2), msg: GridMsg::Solve { spec, .. } }
            if spec.open().is_ok_and(|s| s.assumptions.is_empty() && s.clauses.len() == 9)
    )));
    // second registrant gets peers but no problem
    let actions = register(&mut m, 3, 1.0);
    assert!(!actions.iter().any(|a| matches!(
        a,
        Action::Send {
            msg: GridMsg::Solve { .. },
            ..
        }
    )));
    assert!(actions.iter().any(|a| matches!(
        a,
        Action::Send {
            msg: GridMsg::Peers { .. },
            ..
        }
    )));
}

#[test]
fn split_request_grants_best_ranked_idle_peer() {
    let mut m = master();
    register(&mut m, 1, 0.0); // gets the problem (busy)
    register(&mut m, 2, 0.0);
    register(&mut m, 3, 0.0);
    register(&mut m, 4, 0.0);
    let mut cx = ctx(1.0);
    m.on_message(
        NodeId(1),
        GridMsg::SplitRequest {
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    let actions = cx.take_actions();
    // rank = speed * availability: node 4 is fastest idle
    assert!(actions.iter().any(|a| matches!(
        a,
        Action::Send {
            to: NodeId(1),
            msg: GridMsg::SplitGrant {
                peer: NodeId(4),
                ..
            }
        }
    )));
}

#[test]
fn no_idle_peer_means_backlog() {
    let mut m = master();
    register(&mut m, 1, 0.0);
    let mut cx = ctx(1.0);
    m.on_message(
        NodeId(1),
        GridMsg::SplitRequest {
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    assert!(cx.take_actions().is_empty());
    assert_eq!(m.core.backlog.len(), 1);
    assert_eq!(m.stats.backlogged, 1);

    // a registering client frees the backlog
    let actions = register(&mut m, 2, 2.0);
    assert!(actions.iter().any(|a| matches!(
        a,
        Action::Send {
            to: NodeId(1),
            msg: GridMsg::SplitGrant {
                peer: NodeId(2),
                ..
            }
        }
    )));
    assert!(m.core.backlog.is_empty());
}

#[test]
fn failed_split_frees_the_peer() {
    let mut m = master();
    register(&mut m, 1, 0.0);
    register(&mut m, 2, 0.0);
    let mut cx = ctx(1.0);
    m.on_message(
        NodeId(1),
        GridMsg::SplitRequest {
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    let _ = cx.take_actions();
    assert_eq!(m.core.clients[&NodeId(2)].state, ClientState::Receiving);
    let mut cx = ctx(2.0);
    m.on_message(
        NodeId(1),
        GridMsg::SplitDone {
            requester: NodeId(1),
            peer: NodeId(2),
            ok: false,
            problem: None,
            checkpoint: None,
            stolen: false,
        },
        &mut cx,
    );
    assert_eq!(m.core.clients[&NodeId(2)].state, ClientState::Idle);
    assert!(m.core.grants.is_empty());
}

#[test]
fn undeliverable_grant_frees_the_peer() {
    let mut m = master();
    register(&mut m, 1, 0.0);
    register(&mut m, 2, 0.0);
    let mut cx = ctx(1.0);
    m.on_message(
        NodeId(1),
        GridMsg::SplitRequest {
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    let _ = cx.take_actions();
    assert_eq!(m.core.clients[&NodeId(2)].state, ClientState::Receiving);
    // the grant toward node 1 exhausts its retry budget
    let mut cx = ctx(40.0);
    m.on_undeliverable(
        NodeId(1),
        GridMsg::SplitGrant {
            peer: NodeId(2),
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    assert_eq!(m.core.clients[&NodeId(2)].state, ClientState::Idle);
    assert!(m.core.grants.is_empty());
}

#[test]
fn undeliverable_assign_requeues_the_subproblem() {
    let mut m = master();
    let actions = register(&mut m, 1, 0.0);
    let spec = actions
        .iter()
        .find_map(|a| match a {
            Action::Send {
                msg: GridMsg::Solve { spec, .. },
                ..
            } => Some(spec.clone()),
            _ => None,
        })
        .expect("first registrant gets the problem");
    register(&mut m, 2, 0.0);
    // the whole-problem assignment to node 1 never got through
    let mut cx = ctx(40.0);
    m.on_undeliverable(
        NodeId(1),
        GridMsg::Solve {
            spec,
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    assert_eq!(m.stats.requeues, 1);
    assert_eq!(m.core.clients[&NodeId(1)].state, ClientState::Idle);
    // the subproblem went straight back out to the idle node 2
    assert!(cx.take_actions().iter().any(|a| matches!(
        a,
        Action::Send {
            to: NodeId(2),
            msg: GridMsg::Solve { .. }
        }
    )));
    assert_eq!(m.core.clients[&NodeId(2)].state, ClientState::Busy);
    assert!(m.core.pending_recovery.is_empty());
}

#[test]
fn requeue_message_returns_a_lost_transfer() {
    // reliability on, so a peer dying mid-transfer is not fatal
    let mut m = Master::new(
        gridsat_cnf::paper::fig1_formula(),
        GridConfig::chaos_hardened(),
        speeds(4),
    );
    register(&mut m, 1, 0.0);
    register(&mut m, 2, 0.0);
    register(&mut m, 3, 0.0);
    let mut cx = ctx(1.0);
    m.on_message(
        NodeId(1),
        GridMsg::SplitRequest {
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    let _ = cx.take_actions();
    let (peer, _) = m.core.grants[&NodeId(1)];
    // the peer died mid-transfer; the requester hands the half back
    let mut cx = ctx(2.0);
    m.on_node_down(peer, &mut cx);
    let mut cx = ctx(3.0);
    m.on_message(
        NodeId(1),
        GridMsg::Requeue {
            spec: Box::new(SpecFrame::seal(&SplitSpec {
                num_vars: 1,
                assumptions: vec![(gridsat_cnf::Lit::pos(0), true)],
                clauses: vec![],
            })),
            problem: None,
        },
        &mut cx,
    );
    assert_eq!(m.stats.requeues, 1);
    assert!(m.core.grants.is_empty());
    // re-dispatched to the remaining idle client
    assert!(cx.take_actions().iter().any(|a| matches!(
        a,
        Action::Send {
            msg: GridMsg::Solve { .. },
            ..
        }
    )));
}

#[test]
fn requeued_assignment_releases_the_ghost_roster_entry() {
    // A dispatched recovery can race with an intra-site steal: the Solve
    // lands on a client that just went busy on a stolen cube, and the
    // client hands the assignment straight back. The root must release
    // its roster entry for that problem — otherwise a ghost Busy client
    // blocks all-idle termination forever.
    let mut m = Master::new(
        gridsat_cnf::paper::fig1_formula(),
        GridConfig::chaos_hardened(),
        speeds(4),
    );
    register(&mut m, 1, 0.0); // gets the whole problem
    register(&mut m, 2, 0.0); // idle
    let spec = SplitSpec {
        num_vars: 1,
        assumptions: vec![(gridsat_cnf::Lit::pos(0), true)],
        clauses: vec![],
    };
    // an orphaned half comes back; the root mints a recovery problem
    // and dispatches it to the idle node 2
    let mut cx = ctx(1.0);
    m.on_message(
        NodeId(1),
        GridMsg::Requeue {
            spec: Box::new(SpecFrame::seal(&spec)),
            problem: None,
        },
        &mut cx,
    );
    let _ = cx.take_actions();
    let ghost = m.core.clients[&NodeId(2)]
        .problem
        .expect("recovery dispatched");
    // node 2 was already busy when the Solve arrived and hands it back
    let mut cx = ctx(2.0);
    m.on_message(
        NodeId(2),
        GridMsg::Requeue {
            spec: Box::new(SpecFrame::seal(&spec)),
            problem: Some(ghost),
        },
        &mut cx,
    );
    let _ = cx.take_actions();
    // the ghost assignment is gone (the handler may re-dispatch the
    // requeued space immediately, but never under the returned id)
    assert_ne!(m.core.clients[&NodeId(2)].problem, Some(ghost));
    // and the run can still terminate: close whatever is open
    let mut cx = ctx(3.0);
    if let Some(p) = m.core.clients[&NodeId(2)].problem {
        m.on_message(
            NodeId(2),
            GridMsg::Result {
                result: SubResult::Unsat,
                problem: p,
            },
            &mut cx,
        );
    }
    let p1 = m.core.clients[&NodeId(1)]
        .problem
        .expect("node 1 holds the root problem");
    m.on_message(
        NodeId(1),
        GridMsg::Result {
            result: SubResult::Unsat,
            problem: p1,
        },
        &mut cx,
    );
    assert_eq!(m.outcome(), Some(&GridOutcome::Unsat));
}

#[test]
fn successful_split_protocol_transitions() {
    let mut m = master();
    register(&mut m, 1, 0.0);
    register(&mut m, 2, 0.0);
    let mut cx = ctx(1.0);
    m.on_message(
        NodeId(1),
        GridMsg::SplitRequest {
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    let _ = cx.take_actions();
    // message (5) from requester
    let mut cx = ctx(2.0);
    m.on_message(
        NodeId(1),
        GridMsg::SplitDone {
            requester: NodeId(1),
            peer: NodeId(2),
            ok: true,
            problem: Some(ProblemId::new(NodeId(1), 1)),
            checkpoint: None,
            stolen: false,
        },
        &mut cx,
    );
    assert_eq!(m.stats.splits, 1);
    assert_eq!(m.core.clients[&NodeId(2)].state, ClientState::Receiving);
    // message (4) from the peer completes the grant
    let mut cx = ctx(3.0);
    m.on_message(
        NodeId(2),
        GridMsg::SplitDone {
            requester: NodeId(1),
            peer: NodeId(2),
            ok: true,
            problem: Some(ProblemId::new(NodeId(1), 1)),
            checkpoint: None,
            stolen: false,
        },
        &mut cx,
    );
    assert_eq!(m.core.clients[&NodeId(2)].state, ClientState::Busy);
    assert!(m.core.grants.is_empty());
    assert_eq!(m.stats.max_active_clients, 2);
}

#[test]
fn sat_result_is_verified_and_ends_the_run() {
    let mut m = master();
    register(&mut m, 1, 0.0);
    // a genuine model of the fig1 formula
    let f = gridsat_cnf::paper::fig1_formula();
    let model = gridsat_solver::driver::solve(
        &f,
        gridsat_solver::SolverConfig::default(),
        gridsat_solver::Limits::default(),
    );
    let lits = match model.outcome {
        gridsat_solver::Outcome::Sat(a) => a.to_lits(),
        _ => panic!(),
    };
    let mut cx = ctx(5.0);
    m.on_message(
        NodeId(1),
        GridMsg::Result {
            result: SubResult::Sat(lits),
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    assert!(matches!(m.outcome(), Some(GridOutcome::Sat(_))));
    assert_eq!(m.stats.verification_failures, 0);
    let actions = cx.take_actions();
    assert!(actions.iter().any(|a| matches!(
        a,
        Action::Send {
            msg: GridMsg::Terminate(EndReason::Sat),
            ..
        }
    )));
    assert!(actions.iter().any(|a| matches!(a, Action::Shutdown)));
}

#[test]
fn bogus_sat_result_is_rejected() {
    let mut m = master();
    register(&mut m, 1, 0.0);
    let mut cx = ctx(5.0);
    // V14 false violates clause 9
    m.on_message(
        NodeId(1),
        GridMsg::Result {
            result: SubResult::Sat(vec![gridsat_cnf::Var(13).negative()]),
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    assert_eq!(m.stats.verification_failures, 1);
    assert!(m.outcome().is_none());
}

#[test]
fn all_idle_means_unsat() {
    let mut m = master();
    register(&mut m, 1, 0.0);
    let mut cx = ctx(5.0);
    m.on_message(
        NodeId(1),
        GridMsg::Result {
            result: SubResult::Unsat,
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    assert_eq!(m.outcome(), Some(&GridOutcome::Unsat));
    assert_eq!(m.finished_at(), 5.0);
}

#[test]
fn overall_timeout_fires_on_tick() {
    let mut m = master();
    register(&mut m, 1, 0.0);
    let mut cx = ctx(6001.0);
    m.on_tick(&mut cx);
    assert_eq!(m.outcome(), Some(&GridOutcome::TimeOut));
}

#[test]
fn busy_client_loss_without_checkpoint_ends_the_run() {
    let mut m = master();
    register(&mut m, 1, 0.0);
    let mut cx = ctx(3.0);
    m.on_node_down(NodeId(1), &mut cx);
    assert_eq!(m.outcome(), Some(&GridOutcome::ClientLost));
}

#[test]
fn double_crash_recovers_from_light_then_heavy_checkpoint() {
    let mut m = Master::new(
        gridsat_cnf::paper::fig1_formula(),
        GridConfig {
            checkpoint: CheckpointMode::Heavy,
            ..GridConfig::default()
        },
        speeds(4),
    );
    register(&mut m, 1, 0.0); // busy with the whole problem
    register(&mut m, 2, 0.0);
    // crash 1: recover node 1 from a light checkpoint
    let light_level0 = vec![(gridsat_cnf::Lit::pos(0), true)];
    let p1 = m.core.clients[&NodeId(1)].problem.expect("assigned");
    let mut cx = ctx(10.0);
    m.on_message(
        NodeId(1),
        GridMsg::CheckpointMsg {
            problem: p1,
            checkpoint: Box::new(Checkpoint::Light {
                level0: light_level0.clone(),
            }),
        },
        &mut cx,
    );
    let mut cx = ctx(20.0);
    m.on_node_down(NodeId(1), &mut cx);
    assert_eq!(m.stats.recoveries, 1);
    assert!(m.outcome().is_none());
    // the recovered subproblem went to the idle node 2, carrying the
    // checkpointed guiding path as its assumptions
    let actions = cx.take_actions();
    let spec = actions
        .iter()
        .find_map(|a| match a {
            Action::Send {
                to: NodeId(2),
                msg: GridMsg::Solve { spec, .. },
            } => Some(spec.clone()),
            _ => None,
        })
        .expect("recovery dispatched");
    let spec = spec.open().expect("frame verifies");
    assert_eq!(spec.assumptions, light_level0);
    assert_eq!(spec.clauses.len(), 9); // light = original clauses
    assert_eq!(m.core.clients[&NodeId(2)].state, ClientState::Busy);
    // crash 2: the inheritor checkpoints heavily, then dies too
    let heavy_level0 = vec![
        (gridsat_cnf::Lit::pos(0), true),
        (gridsat_cnf::Lit::neg(1), false),
    ];
    let learned = vec![Clause::new([gridsat_cnf::Lit::pos(2)])];
    let p2 = m.core.clients[&NodeId(2)]
        .problem
        .expect("recovery assigned");
    let mut cx = ctx(30.0);
    m.on_message(
        NodeId(2),
        GridMsg::CheckpointMsg {
            problem: p2,
            checkpoint: Box::new(Checkpoint::Heavy {
                level0: heavy_level0.clone(),
                learned: learned.clone(),
            }),
        },
        &mut cx,
    );
    let mut cx = ctx(40.0);
    m.on_node_down(NodeId(2), &mut cx);
    assert_eq!(m.stats.recoveries, 2);
    assert!(m.outcome().is_none());
    // no idle client yet: the spec waits in pending_recovery, so the
    // UNSAT detector must hold its fire
    assert_eq!(m.core.pending_recovery.len(), 1);
    let mut cx = ctx(41.0);
    m.check_termination(&mut cx);
    assert!(m.outcome().is_none());
    // a fresh registrant picks it up on the next housekeeping tick
    register(&mut m, 3, 50.0);
    let mut cx = ctx(55.0);
    m.on_tick(&mut cx);
    let actions = cx.take_actions();
    let spec = actions
        .iter()
        .find_map(|a| match a {
            Action::Send {
                to: NodeId(3),
                msg: GridMsg::Solve { spec, .. },
            } => Some(spec.clone()),
            _ => None,
        })
        .expect("second recovery dispatched");
    let spec = spec.open().expect("frame verifies");
    // heavy = deeper guiding path plus the learned clauses
    assert_eq!(spec.assumptions, heavy_level0);
    assert_eq!(spec.clauses, learned);
    assert!(m.core.pending_recovery.is_empty());
}

#[test]
fn silent_client_lease_expires_and_is_recovered() {
    let (obs, ring) = Obs::ring(64);
    let mut m = Master::new(
        gridsat_cnf::paper::fig1_formula(),
        GridConfig::chaos_hardened(),
        speeds(4),
    );
    m.set_obs(obs);
    register(&mut m, 1, 0.0); // busy with the whole problem
    register(&mut m, 2, 0.0);
    let p1 = m.core.clients[&NodeId(1)].problem.expect("assigned");
    let mut cx = ctx(5.0);
    m.on_message(
        NodeId(1),
        GridMsg::CheckpointMsg {
            problem: p1,
            checkpoint: Box::new(Checkpoint::Light { level0: vec![] }),
        },
        &mut cx,
    );
    // node 2 keeps renewing its lease; node 1 goes silent
    let mut cx = ctx(45.0);
    m.on_message(NodeId(2), GridMsg::Heartbeat, &mut cx);
    // lease = heartbeat_period 10 x lease_misses 3 = 30 s
    let mut cx = ctx(50.0);
    m.on_tick(&mut cx);
    assert_eq!(m.stats.lease_expiries, 1);
    assert_eq!(m.stats.recoveries, 1);
    assert!(!m.core.clients.contains_key(&NodeId(1)));
    assert_eq!(m.core.clients[&NodeId(2)].state, ClientState::Busy);
    assert!(m.outcome().is_none());
    let events = ring.lock().unwrap().events();
    assert!(events
        .iter()
        .any(|e| matches!(e.event, Event::LeaseExpire { client: 1 })));
}

#[test]
fn idle_client_loss_is_tolerated() {
    let mut m = master();
    register(&mut m, 1, 0.0);
    register(&mut m, 2, 0.0);
    let mut cx = ctx(3.0);
    m.on_node_down(NodeId(2), &mut cx);
    assert!(m.outcome().is_none());
    assert!(!m.core.clients.contains_key(&NodeId(2)));
}

#[test]
fn backlog_prefers_longest_running_requester() {
    let mut m = master();
    register(&mut m, 1, 0.0); // busy since 0
                              // make 2 and 3 busy via manual state (simulating earlier splits)
    register(&mut m, 2, 0.0);
    register(&mut m, 3, 0.0);
    m.core.clients.get_mut(&NodeId(2)).unwrap().state = ClientState::Busy;
    m.core.clients.get_mut(&NodeId(2)).unwrap().problem_since = 10.0;
    m.core.clients.get_mut(&NodeId(3)).unwrap().state = ClientState::Busy;
    m.core.clients.get_mut(&NodeId(3)).unwrap().problem_since = 20.0;
    // all busy: requests back up (naming the subproblem the master
    // believes each client holds, as real clients do)
    for id in [2u32, 3, 1] {
        let problem = m.core.clients[&NodeId(id)]
            .problem
            .unwrap_or(ProblemId::new(NodeId(id), 1));
        let mut cx = ctx(30.0);
        m.on_message(NodeId(id), GridMsg::SplitRequest { problem }, &mut cx);
    }
    assert_eq!(m.core.backlog.len(), 3);
    // node 1 has been running longest (since 0.0)
    assert_eq!(m.pop_backlog(30.0), Some(NodeId(1)));
    assert_eq!(m.pop_backlog(30.0), Some(NodeId(2)));
    assert_eq!(m.pop_backlog(30.0), Some(NodeId(3)));
}

#[test]
fn snapshot_is_structured_and_displays_like_the_old_dump() {
    let mut m = master();
    register(&mut m, 1, 0.0); // busy with the whole problem
    register(&mut m, 2, 0.0);
    let snap = m.snapshot();
    assert_eq!(snap.clients.len(), 2);
    let busy = snap.clients.iter().find(|c| c.id == 1).unwrap();
    assert_eq!(busy.state, ClientState::Busy);
    assert!(!busy.has_checkpoint);
    assert_eq!(snap.backlog, Vec::<u32>::new());
    assert_eq!(snap.outcome, None);
    assert_eq!(snap.stats, m.stats);
    let text = snap.to_string();
    assert!(text.contains("n1: Busy since 0"));
    assert!(text.contains("backlog: []"));
    // snapshots of identical state compare equal (structured contract)
    let mut m2 = master();
    register(&mut m2, 1, 0.0);
    register(&mut m2, 2, 0.0);
    assert_eq!(m2.snapshot(), snap);
}

#[test]
fn master_stats_absorb_is_lossless() {
    let full = MasterStats {
        max_active_clients: 3,
        splits: 1,
        backlogged: 2,
        migrations: 4,
        verification_failures: 5,
        results: 6,
        recoveries: 7,
        lease_expiries: 8,
        requeues: 9,
        corrupt_msgs: 10,
        quarantines: 11,
        steals_settled: 12,
        steals_aborted: 13,
        escalations: 14,
    };
    let mut acc = MasterStats::default();
    acc.absorb(&full);
    acc.absorb(&full);
    assert_eq!(
        acc,
        MasterStats {
            max_active_clients: 3, // max, not sum
            splits: 2,
            backlogged: 4,
            migrations: 8,
            verification_failures: 10,
            results: 12,
            recoveries: 14,
            lease_expiries: 16,
            requeues: 18,
            corrupt_msgs: 20,
            quarantines: 22,
            steals_settled: 24,
            steals_aborted: 26,
            escalations: 28,
        }
    );
    let mut reg = MetricsRegistry::new();
    acc.export_metrics(&mut reg, "master");
    assert_eq!(reg.counter("master.splits"), 2);
    assert_eq!(reg.counter("master.requeues"), 18);
    assert_eq!(reg.gauge("master.max_active_clients"), Some(3.0));
}

#[test]
fn scheduling_events_reach_the_obs_sink() {
    let (obs, ring) = Obs::ring(256);
    let mut m = master();
    m.set_obs(obs);
    register(&mut m, 1, 0.0);
    register(&mut m, 2, 0.5);
    // backlog then drain: 2 is idle, so the split grants straight away
    let mut cx = ctx(1.0);
    m.on_message(
        NodeId(1),
        GridMsg::SplitRequest {
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    let mut cx = ctx(2.0);
    m.on_message(
        NodeId(1),
        GridMsg::SplitDone {
            requester: NodeId(1),
            peer: NodeId(2),
            ok: true,
            problem: Some(ProblemId::new(NodeId(1), 1)),
            checkpoint: None,
            stolen: false,
        },
        &mut cx,
    );
    let events = ring.lock().unwrap().events();
    let count = |k: &str| events.iter().filter(|e| e.event.kind() == k).count();
    assert_eq!(count("client_launch"), 2);
    assert_eq!(count("assign"), 1);
    assert_eq!(count("split"), 1);
    // every scheduling decision is journaled before it is applied
    assert!(count("journal_append") >= 4);
    let split = events.iter().find(|e| e.event.kind() == "split").unwrap();
    assert_eq!(split.t_s, 2.0);
    match split.event {
        Event::Split { requester, peer } => {
            assert_eq!((requester, peer), (1, 2));
        }
        _ => unreachable!(),
    }
}

#[test]
fn worst_rank_policy_picks_slowest() {
    let mut m = Master::new(
        gridsat_cnf::paper::fig1_formula(),
        GridConfig {
            scheduler: SchedPolicy::WorstRank,
            ..GridConfig::default()
        },
        speeds(4),
    );
    register(&mut m, 1, 0.0);
    register(&mut m, 2, 0.0);
    register(&mut m, 3, 0.0);
    register(&mut m, 4, 0.0);
    let mut cx = ctx(1.0);
    m.on_message(
        NodeId(1),
        GridMsg::SplitRequest {
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    let actions = cx.take_actions();
    assert!(actions.iter().any(|a| matches!(
        a,
        Action::Send {
            msg: GridMsg::SplitGrant {
                peer: NodeId(2),
                ..
            },
            ..
        }
    )));
}

#[test]
fn master_restart_replays_its_journal() {
    let mut m = Master::new(
        gridsat_cnf::paper::fig1_formula(),
        GridConfig::chaos_hardened(),
        speeds(4),
    );
    let mut cx = ctx(0.0);
    m.on_start(&mut cx);
    register(&mut m, 1, 0.0); // busy with the whole problem
    register(&mut m, 2, 0.0);
    let mut cx = ctx(1.0);
    m.on_message(
        NodeId(1),
        GridMsg::SplitRequest {
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    let image = m.core.image();
    // the master node restarts: a second on_start folds the journal back
    // into the same scheduling state (and self-checks the fold)
    let mut cx = ctx(50.0);
    m.on_start(&mut cx);
    assert_eq!(m.core.image(), image);
    let snap = m.snapshot();
    assert_eq!(snap.last_replay, Some(50.0));
    assert!(snap.journal_len >= 3); // launches, assignment, grant
                                    // every lease restarts: heartbeats could not reach a dead master
    assert!(m.core.clients.values().all(|c| c.last_seen == 50.0));
}

#[test]
fn torn_journal_restart_rebuilds_from_the_verified_prefix() {
    let f = gridsat_cnf::paper::fig1_formula();
    let cfg = GridConfig::chaos_hardened();
    let (obs, ring) = Obs::ring(256);
    let mut m = Master::new(f.clone(), cfg.clone(), speeds(4));
    m.set_obs(obs);
    let mut cx = ctx(0.0);
    m.on_start(&mut cx);
    register(&mut m, 1, 0.0); // busy with the whole problem
    register(&mut m, 2, 0.0);
    let mut cx = ctx(1.0);
    m.on_message(
        NodeId(1),
        GridMsg::SplitRequest {
            problem: ProblemId::new(NodeId(0), 1),
        },
        &mut cx,
    );
    let records = m.journal.records().to_vec();
    assert!(records.len() >= 3);
    // the crash tears the last disk append mid-record: every record but
    // the final one survives verification
    let torn_at = m.journal.log_bytes().len() - 2;
    m.journal.tear_log(torn_at);
    let mut cx = ctx(50.0);
    m.on_start(&mut cx);
    assert_eq!(m.journal.len() as usize, records.len() - 1);
    assert_eq!(
        m.core.image(),
        MasterJournal::replay(&f, &cfg, &records[..records.len() - 1]).image(),
        "rebuilt state must be the fold of the verified prefix"
    );
    let events = ring.lock().unwrap().events();
    assert!(
        events.iter().any(|e| matches!(
            e.event,
            Event::JournalTruncate {
                kept,
                dropped_bytes,
            } if kept as usize == records.len() - 1 && dropped_bytes > 0
        )),
        "the truncation must be observable"
    );
    // the master stays live: the next registrant is still served
    let actions = register(&mut m, 5, 51.0);
    assert!(actions
        .iter()
        .any(|a| matches!(a, Action::Send { to: NodeId(5), .. })));
}

#[test]
fn journal_ships_and_acks_trim_the_standby_lag() {
    let mut m = Master::new(
        gridsat_cnf::paper::fig1_formula(),
        GridConfig::failover_hardened(),
        speeds(4),
    );
    let mut cx = ctx(0.0);
    m.on_start(&mut cx);
    let actions = register(&mut m, 2, 0.0);
    // the commit batch (Launch + AssignWhole) is shipped to standby node 1
    let batch = actions
        .iter()
        .find_map(|a| match a {
            Action::Send {
                to: NodeId(1),
                msg: GridMsg::JournalBatch { start, records },
            } => Some((*start, records.clone())),
            _ => None,
        })
        .expect("journal batch shipped to the standby");
    assert_eq!(batch.0, 0);
    assert!(batch.1.len() >= 2);
    let snap = m.snapshot();
    assert_eq!(snap.standby_lag, Some(snap.journal_len));
    // the standby's cumulative ack trims the lag to zero
    let mut cx = ctx(1.0);
    m.on_message(
        NodeId(1),
        GridMsg::JournalAck {
            next: snap.journal_len,
        },
        &mut cx,
    );
    assert_eq!(m.snapshot().standby_lag, Some(0));
    // a quiet housekeeping tick still ships an empty keepalive batch:
    // that is how the standby tells a dead master from an idle one
    let mut cx = ctx(5.0);
    m.on_tick(&mut cx);
    assert!(cx.take_actions().iter().any(|a| matches!(
        a,
        Action::Send {
            to: NodeId(1),
            msg: GridMsg::JournalBatch { records, .. },
        } if records.is_empty()
    )));
}

#[test]
fn standby_rejects_a_corrupted_record_and_the_dup_ack_re_requests_it() {
    use crate::standby::StandbyNode;

    fn batches_to_standby(actions: &[Action<GridMsg>]) -> Vec<(u64, Vec<SealedRecord>)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    to: NodeId(1),
                    msg: GridMsg::JournalBatch { start, records },
                } if !records.is_empty() => Some((*start, records.clone())),
                _ => None,
            })
            .collect()
    }

    let f = gridsat_cnf::paper::fig1_formula();
    let cfg = GridConfig::failover_hardened();
    let mut m = Master::new(f.clone(), cfg.clone(), speeds(4));
    let mut cx = ctx(0.0);
    m.on_start(&mut cx);
    let mut batches = batches_to_standby(&register(&mut m, 2, 0.0));
    batches.extend(batches_to_standby(&register(&mut m, 3, 0.5)));
    assert!(!batches.is_empty());
    let total: usize = batches.iter().map(|(_, r)| r.len()).sum();

    let mut s = StandbyNode::new(
        Client::new(NodeId(1), cfg.clone()),
        f,
        cfg,
        speeds(4),
        Obs::default(),
        Audit::default(),
    );
    // first batch arrives with one record mangled in flight: nothing
    // past the damage may be applied, and the ack repeats the last
    // verified position instead of covering the batch
    let (start, mut records) = batches[0].clone();
    assert_eq!(start, 0);
    records[0].corrupt_bit(7);
    let mut cx = ctx_at(1, 1.0);
    s.on_message(NodeId(0), GridMsg::JournalBatch { start, records }, &mut cx);
    assert_eq!(s.rejected(), 1);
    assert_eq!(s.tailed(), 0, "a rejected record is never applied");
    let acks: Vec<u64> = cx
        .take_actions()
        .iter()
        .filter_map(|a| match a {
            Action::Send {
                to: NodeId(0),
                msg: GridMsg::JournalAck { next },
            } => Some(*next),
            _ => None,
        })
        .collect();
    assert_eq!(
        acks,
        vec![0],
        "the withheld ack repeats the verified prefix"
    );

    // the duplicate ack rewinds the master's ship cursor, and the same
    // delivery immediately re-ships from the gap
    let mut cx = ctx(1.5);
    m.on_message(NodeId(1), GridMsg::JournalAck { next: 0 }, &mut cx);
    let reshipped = batches_to_standby(&cx.take_actions());
    assert!(
        reshipped.iter().any(|(start, _)| *start == 0),
        "the master must re-ship from the rejected record"
    );

    // the clean re-ship catches the standby up completely
    for (start, records) in reshipped {
        let mut cx = ctx_at(1, 6.0);
        s.on_message(NodeId(0), GridMsg::JournalBatch { start, records }, &mut cx);
    }
    assert_eq!(s.tailed(), total);
    assert_eq!(s.rejected(), 1);

    // with the journal intact, a quiet feed still promotes cleanly
    let mut cx = ctx_at(1, 100.0);
    s.on_tick(&mut cx);
    assert!(s.promoted_master().is_some(), "standby takes over");
}

#[test]
fn promoted_standby_resumes_from_shipped_records() {
    fn harvest(actions: &[Action<GridMsg>], shipped: &mut Vec<JournalRecord>) {
        for a in actions {
            if let Action::Send {
                to: NodeId(1),
                msg: GridMsg::JournalBatch { start, records },
            } = a
            {
                // batches arrive gapless and in order on a healthy link
                assert_eq!(*start, shipped.len() as u64);
                shipped.extend(records.iter().enumerate().map(|(i, sealed)| {
                    let (seq, rec) = sealed.open().expect("sealed record verifies");
                    assert_eq!(seq, start + i as u64);
                    rec
                }));
            }
        }
    }
    let f = gridsat_cnf::paper::fig1_formula();
    let cfg = GridConfig::failover_hardened();
    let mut m = Master::new(f.clone(), cfg.clone(), speeds(4));
    let mut cx = ctx(0.0);
    m.on_start(&mut cx);
    let mut shipped: Vec<JournalRecord> = Vec::new();
    // node 1 doubles as standby and first client: it gets the problem
    let actions = register(&mut m, 1, 0.0);
    harvest(&actions, &mut shipped);
    let own_spec = actions
        .iter()
        .find_map(|a| match a {
            Action::Send {
                to: NodeId(1),
                msg: GridMsg::Solve { spec, .. },
            } => Some(spec.open().expect("frame verifies")),
            _ => None,
        })
        .expect("first registrant gets the problem");
    let own_problem = ProblemId::new(NodeId(0), 1);
    harvest(&register(&mut m, 2, 1.0), &mut shipped);
    harvest(&register(&mut m, 3, 2.0), &mut shipped);
    // node 0 dies for good; the standby promotes from what it tailed
    let mut p = Master::promoted(
        f,
        cfg,
        speeds(4),
        NodeId(1),
        shipped,
        60.0,
        Obs::default(),
        Audit::default(),
    );
    p.absorb_own_client(60.0, Some((own_spec, Some(own_problem))));
    let mut cx = ctx_at(1, 60.0);
    p.announce_takeover(&mut cx);
    let actions = cx.take_actions();
    // survivors are told to re-register; the promoted master skips itself
    for id in [2u32, 3] {
        assert!(actions.iter().any(
            |a| matches!(a, Action::Send { to, msg: GridMsg::Takeover } if *to == NodeId(id))
        ));
    }
    assert!(!actions.iter().any(|a| matches!(
        a,
        Action::Send {
            to: NodeId(1),
            msg: GridMsg::Takeover
        }
    )));
    // the subproblem the standby was solving as a client goes back out
    assert!(actions.iter().any(|a| matches!(
        a,
        Action::Send {
            msg: GridMsg::Solve { .. },
            ..
        }
    )));
    let snap = p.snapshot();
    assert_eq!(snap.last_replay, Some(60.0));
    assert!(snap.standby_lag.is_none()); // a promoted master has no standby
}

#[test]
fn randomized_schedules_replay_to_the_live_state() {
    // hand-rolled xorshift64: deterministic, no external dependency
    fn xs(s: &mut u64) -> u64 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }
    let f = gridsat_cnf::paper::fig1_formula();
    let cfg = GridConfig {
        checkpoint: CheckpointMode::Heavy,
        ..GridConfig::chaos_hardened()
    };
    let mut seed = 0x9e3779b97f4a7c15u64;
    for round in 0..20 {
        let mut m = Master::new(f.clone(), cfg.clone(), speeds(6));
        let mut known: Vec<ProblemId> = Vec::new();
        let mut child = 0u32;
        let mut t = 0.0;
        for _ in 0..40 {
            t += 0.5; // stays far under the 30 s lease
            let node = NodeId(1 + (xs(&mut seed) % 6) as u32);
            match xs(&mut seed) % 6 {
                0 => {
                    let mut cx = ctx(t);
                    m.on_message(
                        node,
                        GridMsg::Register {
                            memory: 3 << 20,
                            availability: 1.0,
                        },
                        &mut cx,
                    );
                }
                1 => {
                    let problem = m
                        .core
                        .clients
                        .get(&node)
                        .and_then(|c| c.problem)
                        .unwrap_or(ProblemId::new(node, 1));
                    let mut cx = ctx(t);
                    m.on_message(node, GridMsg::SplitRequest { problem }, &mut cx);
                }
                2 => {
                    // complete an open grant with the full (5)+(4) pair
                    let grant = m.core.grants.iter().next().map(|(r, (p, _))| (*r, *p));
                    if let Some((requester, peer)) = grant {
                        child += 1;
                        let p_child = ProblemId::new(requester, child);
                        known.push(p_child);
                        let mut cx = ctx(t);
                        m.on_message(
                            requester,
                            GridMsg::SplitDone {
                                requester,
                                peer,
                                ok: true,
                                problem: Some(p_child),
                                checkpoint: None,
                                stolen: false,
                            },
                            &mut cx,
                        );
                        let mut cx = ctx(t);
                        m.on_message(
                            peer,
                            GridMsg::SplitDone {
                                requester,
                                peer,
                                ok: true,
                                problem: Some(p_child),
                                checkpoint: Some(Box::new(Checkpoint::Light { level0: vec![] })),
                                stolen: false,
                            },
                            &mut cx,
                        );
                    }
                }
                3 => {
                    if let Some(&p) = known.first() {
                        let mut cx = ctx(t);
                        m.on_message(
                            node,
                            GridMsg::Result {
                                result: SubResult::Unsat,
                                problem: p,
                            },
                            &mut cx,
                        );
                    }
                }
                4 => {
                    let lit = gridsat_cnf::Lit::pos((xs(&mut seed) % 14) as u32);
                    if let Some(p) = m.core.clients.get(&node).and_then(|c| c.problem) {
                        let mut cx = ctx(t);
                        m.on_message(
                            node,
                            GridMsg::CheckpointMsg {
                                problem: p,
                                checkpoint: Box::new(Checkpoint::Light {
                                    level0: vec![(lit, true)],
                                }),
                            },
                            &mut cx,
                        );
                    }
                }
                _ => {
                    if m.core.clients.len() > 1 && m.core.clients.contains_key(&node) {
                        let mut cx = ctx(t);
                        m.on_node_down(node, &mut cx);
                    }
                }
            }
            if m.outcome().is_some() {
                break;
            }
        }
        let replayed = MasterJournal::replay(&f, &cfg, m.journal.records());
        assert_eq!(
            replayed.image(),
            m.core.image(),
            "round {round}: replayed scheduling state diverged from live state"
        );
    }
}
