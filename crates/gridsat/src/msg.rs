//! The GridSAT wire protocol (paper Section 3.3 and Figure 3).
//!
//! Control messages are small; the [`GridMsg::Subproblem`] transfer is the
//! big one ("from 10 KBytes to 500 MBytes ... 100s of MBytes on average"),
//! which is why it travels client-to-client rather than through the
//! master.

use crate::journal::SealedRecord;
use crate::wire::{EncodedBatch, SpecFrame};
use gridsat_cnf::{Clause, Lit};
use gridsat_grid::{MessageSize, NodeId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Globally unique subproblem identity: creator node in the high bits,
/// per-creator counter in the low bits. Control messages carry it so the
/// master and clients never act on a stale grant, result or migration —
/// subproblems move between nodes asynchronously, and timestamps alone
/// cannot identify them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ProblemId(pub u64);

impl ProblemId {
    pub fn new(creator: NodeId, counter: u32) -> ProblemId {
        ProblemId((u64::from(creator.0) << 32) | u64::from(counter))
    }
}

/// Why a run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EndReason {
    Sat,
    Unsat,
    /// Overall execution cap expired without an answer.
    TimeOut,
    /// A busy client was lost and recovery was not enabled.
    ClientLost,
}

/// The result a client reports for its subproblem.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum SubResult {
    /// Satisfying assignment, as the list of true literals
    /// ("this client sends the assignment stack to the master which
    /// verifies that the stack satisfies the problem").
    Sat(Vec<Lit>),
    /// The subproblem is unsatisfiable.
    Unsat,
}

/// Checkpoint payloads (paper Section 3.4, implemented as an extension).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Checkpoint {
    /// Level-0 assignment only ("light checkpoint").
    Light { level0: Vec<(Lit, bool)> },
    /// Level 0 plus the learned clauses ("heavy checkpoint").
    Heavy {
        level0: Vec<(Lit, bool)>,
        learned: Vec<Clause>,
    },
}

/// All GridSAT messages.
#[derive(Clone, Debug)]
pub enum GridMsg {
    // ---- client -> master ----
    /// A client came up and registered (paper: clients "contact the
    /// master and register with it"). Carries the host memory so the
    /// master can rank, and the initial availability measurement.
    Register { memory: usize, availability: f64 },
    /// Figure 3 message (1): "client A notifies the master that it
    /// wishes to split its subproblem".
    SplitRequest { problem: ProblemId },
    /// Figure 3 messages (4)/(5): peers report the success or failure of
    /// the split transfer. `requester`/`peer` identify the transfer, so
    /// the master never misattributes a completion when a node is
    /// involved in several grants over its lifetime.
    SplitDone {
        requester: NodeId,
        peer: NodeId,
        ok: bool,
        /// For the peer's confirmation: the subproblem it now holds.
        problem: Option<ProblemId>,
        /// For the peer's confirmation: its initial recovery image,
        /// bundled so the master never holds a Busy client without a
        /// checkpoint (a separate upload could be lost while the client
        /// dies, making the subproblem unrecoverable).
        checkpoint: Option<Box<Checkpoint>>,
        /// The transfer was a sub-master-brokered steal, not a master
        /// grant: the root settles it against its pending-steal ledger
        /// instead of a grant entry (hierarchy extension).
        stolen: bool,
    },
    /// Subproblem finished.
    Result {
        result: SubResult,
        problem: ProblemId,
    },
    /// Periodic NWS-style load measurement feeding the master's
    /// forecasters.
    LoadReport { availability: f64 },
    /// Checkpoint upload (extension). Tagged with the subproblem it
    /// covers so the master can reject a checkpoint delivered after the
    /// subproblem already finished (at-least-once delivery reorders).
    CheckpointMsg {
        problem: ProblemId,
        checkpoint: Box<Checkpoint>,
    },
    /// Lease renewal: "I am alive" (reliability extension). Sent
    /// periodically so the master detects silent loss itself instead of
    /// relying solely on connection teardown.
    Heartbeat,
    /// A subproblem transfer became undeliverable; its spec is handed
    /// back to the master for re-dispatch (reliability extension).
    /// `problem` names the lost instance when the sender knows it, so
    /// the re-dispatch can be attributed to the original subproblem.
    Requeue {
        spec: Box<SpecFrame>,
        problem: Option<ProblemId>,
    },

    // ---- master -> client ----
    /// Assign a (sub)problem; the first registered client receives the
    /// entire problem this way. The spec travels as a checksummed
    /// [`SpecFrame`]; the receiver verifies before decoding.
    Solve {
        spec: Box<SpecFrame>,
        problem: ProblemId,
    },
    /// Figure 3 message (2): the master grants a split and names the
    /// idle peer to split with. `issued_at` guards against the grant
    /// arriving after the requester's subproblem has changed.
    /// The grant names the subproblem it applies to; the client rejects
    /// it if its current subproblem differs.
    SplitGrant { peer: NodeId, problem: ProblemId },
    /// Move the current subproblem to `peer` (backlog/migration).
    Migrate { peer: NodeId, problem: ProblemId },
    /// Current set of registered clients (for clause-sharing fan-out).
    /// `epoch` counts membership changes; clients use it to agree on the
    /// relay tree and to drop share forwards routed on a stale tree.
    Peers { epoch: u64, peers: Vec<NodeId> },
    /// End of run.
    Terminate(EndReason),

    // ---- client -> client ----
    /// Figure 3 message (3): the subproblem transfer, "by far the
    /// largest message sent". `sent_at` lets the receiver compute its
    /// transfer time, which seeds the split time-out heuristic.
    /// `problem` is the subproblem's identity, minted by its creator
    /// (splits mint a fresh id; migrations keep the old one).
    Subproblem {
        spec: Box<SpecFrame>,
        sent_at: f64,
        problem: ProblemId,
        /// Transfer originated from a work steal rather than a master
        /// grant; the receiver echoes this in its [`GridMsg::SplitDone`].
        stolen: bool,
    },
    /// Learned clauses broadcast to peers (paper Section 3.2). The batch
    /// is encoded once per drain ([`EncodedBatch`]) and shared by
    /// reference across the whole fan-out — every relay hop forwards the
    /// same buffer by refcount, never re-serializing. `origin` roots the
    /// relay tree; `epoch` is the peer-list epoch the sender routed on,
    /// so forwards computed against a stale tree are dropped.
    Share {
        batch: Arc<EncodedBatch>,
        origin: NodeId,
        epoch: u64,
    },

    // ---- master <-> standby (durability extension) ----
    /// Journal records `start..start+records.len()` shipped from the
    /// active master to the standby so a promotion can replay scheduling
    /// history it never witnessed. Each record travels sealed (stamped
    /// and checksummed); the standby verifies record by record and acks
    /// only the verified contiguous prefix, so one mangled record never
    /// poisons the replayed history.
    JournalBatch {
        start: u64,
        records: Vec<SealedRecord>,
    },
    /// Standby's cumulative ack: it holds every record below `next`.
    /// Lossy by design — a missed ack only inflates the reported lag.
    JournalAck { next: u64 },
    /// A promoted standby announces itself; clients retarget their
    /// control traffic and answer with [`GridMsg::Adopt`].
    Takeover,
    /// Re-registration with state: what the client is working on right
    /// now, so the new master can reconcile the journal suffix it lost.
    Adopt {
        memory: usize,
        availability: f64,
        problem: Option<ProblemId>,
        checkpoint: Option<Box<Checkpoint>>,
    },

    // ---- hierarchical control plane (scaling extension) ----
    /// Idle client announces itself to its site sub-master as a steal
    /// target. Lossy by design: the client re-announces periodically
    /// while idle, like a heartbeat.
    StealRequest,
    /// Sub-master pairs the idle announcer with a loaded sibling:
    /// "steal `problem` from `donor`". The ticket is advisory — the
    /// donor silently ignores a steal its subproblem has outgrown.
    StealTicket { donor: NodeId, problem: ProblemId },
    /// Thief presents the ticket to the donor, who splits off a
    /// guiding-path extension directly to it (no master involved).
    Steal { problem: ProblemId },
    /// Donor declines a steal its subproblem has outgrown (finished,
    /// migrated, or too shallow to split). The thief re-announces itself
    /// immediately instead of waiting out its idle period.
    StealRefused { problem: ProblemId },
    /// Donor tells the root master a steal transfer is in flight, at the
    /// instant it splits. Travels on the donor->root channel ahead of the
    /// donor's own later results, so the root opens the steal before it
    /// could ever see them.
    StealNotice {
        thief: NodeId,
        problem: ProblemId,
        at: f64,
    },
    /// Sub-master escalates an unmatched split offer to the root master
    /// when its site has no idle capacity (rate-limited).
    SplitEscalate {
        requester: NodeId,
        problem: ProblemId,
    },
    /// Root invites a sub-master that recently escalated to hand up its
    /// next unmatched offer right away: the root has idle capacity and
    /// an empty backlog, so a work-surplus site should not sit on its
    /// escalate timer while another site drains. Best-effort — the
    /// periodic escalation is the fallback.
    OfferSolicit,
    /// Periodic sub-master telemetry to the root: site occupancy and the
    /// steals it brokered. Best-effort, feeds reporting only.
    SiteStatus { idle: u32, busy: u32, steals: u64 },
}

impl GridMsg {
    /// Does losing this message threaten soundness or liveness of the
    /// protocol? Control messages get acked at-least-once delivery under
    /// the reliability layer; the rest is intentionally fire-and-forget:
    /// clause shares and load reports are periodic best-effort streams,
    /// peer-list updates are re-broadcast on every membership change, and
    /// heartbeats exist precisely to be allowed to miss.
    pub fn is_control(&self) -> bool {
        match self {
            GridMsg::Share { .. }
            | GridMsg::LoadReport { .. }
            | GridMsg::Peers { .. }
            | GridMsg::JournalAck { .. }
            | GridMsg::Heartbeat
            // idle announcements re-arise on the steal period, and
            // site-status is pure telemetry
            | GridMsg::StealRequest
            // a refusal only shortcuts the thief's own retry timer
            | GridMsg::StealRefused { .. }
            // a solicit is re-armed by the next escalation
            | GridMsg::OfferSolicit
            | GridMsg::SiteStatus { .. } => false,
            GridMsg::Register { .. }
            | GridMsg::JournalBatch { .. }
            | GridMsg::Takeover
            | GridMsg::Adopt { .. }
            | GridMsg::SplitRequest { .. }
            | GridMsg::SplitDone { .. }
            | GridMsg::Result { .. }
            | GridMsg::CheckpointMsg { .. }
            | GridMsg::Solve { .. }
            | GridMsg::SplitGrant { .. }
            | GridMsg::Migrate { .. }
            | GridMsg::Terminate(_)
            | GridMsg::Subproblem { .. }
            | GridMsg::Requeue { .. }
            | GridMsg::StealTicket { .. }
            | GridMsg::Steal { .. }
            | GridMsg::StealNotice { .. }
            | GridMsg::SplitEscalate { .. } => true,
        }
    }

    /// Stable short name of the message kind, used as the metric label
    /// for the master's per-kind service-time histograms.
    pub fn kind_str(&self) -> &'static str {
        match self {
            GridMsg::Register { .. } => "register",
            GridMsg::SplitRequest { .. } => "split_request",
            GridMsg::SplitDone { .. } => "split_done",
            GridMsg::Result { .. } => "result",
            GridMsg::LoadReport { .. } => "load_report",
            GridMsg::CheckpointMsg { .. } => "checkpoint",
            GridMsg::Heartbeat => "heartbeat",
            GridMsg::Requeue { .. } => "requeue",
            GridMsg::Solve { .. } => "solve",
            GridMsg::SplitGrant { .. } => "split_grant",
            GridMsg::Migrate { .. } => "migrate",
            GridMsg::Peers { .. } => "peers",
            GridMsg::Terminate(_) => "terminate",
            GridMsg::Subproblem { .. } => "subproblem",
            GridMsg::Share { .. } => "share",
            GridMsg::JournalBatch { .. } => "journal_batch",
            GridMsg::JournalAck { .. } => "journal_ack",
            GridMsg::Takeover => "takeover",
            GridMsg::Adopt { .. } => "adopt",
            GridMsg::StealRequest => "steal_request",
            GridMsg::StealTicket { .. } => "steal_ticket",
            GridMsg::Steal { .. } => "steal",
            GridMsg::StealRefused { .. } => "steal_refused",
            GridMsg::StealNotice { .. } => "steal_notice",
            GridMsg::SplitEscalate { .. } => "split_escalate",
            GridMsg::OfferSolicit => "offer_solicit",
            GridMsg::SiteStatus { .. } => "site_status",
        }
    }
}

impl MessageSize for GridMsg {
    fn size_bytes(&self) -> usize {
        match self {
            GridMsg::Register { .. } => 64,
            GridMsg::SplitRequest { .. } => 40,
            GridMsg::SplitDone { checkpoint, .. } => {
                48 + match checkpoint.as_deref() {
                    None => 0,
                    Some(Checkpoint::Light { level0 }) => 8 + level0.len() * 5,
                    Some(Checkpoint::Heavy { level0, learned }) => {
                        8 + level0.len() * 5
                            + learned.iter().map(|c| 8 + c.len() * 4).sum::<usize>()
                    }
                }
            }
            GridMsg::Result {
                result: SubResult::Unsat,
                ..
            } => 40,
            GridMsg::Result {
                result: SubResult::Sat(lits),
                ..
            } => 40 + lits.len() * 5,
            GridMsg::LoadReport { .. } => 32,
            GridMsg::Heartbeat => 24,
            GridMsg::Requeue { spec, .. } => 24 + spec.wire_len(),
            GridMsg::CheckpointMsg { checkpoint, .. } => match checkpoint.as_ref() {
                Checkpoint::Light { level0 } => 40 + level0.len() * 5,
                Checkpoint::Heavy { level0, learned } => {
                    40 + level0.len() * 5 + learned.iter().map(|c| 8 + c.len() * 4).sum::<usize>()
                }
            },
            GridMsg::Solve { spec, .. } => 24 + spec.wire_len(),
            GridMsg::SplitGrant { .. } => 32,
            GridMsg::Migrate { .. } => 32,
            GridMsg::Peers { peers, .. } => 24 + peers.len() * 4,
            GridMsg::Terminate(_) => 32,
            GridMsg::Subproblem { spec, .. } => 24 + spec.wire_len(),
            // 24-byte frame (origin + epoch + framing) plus the actual
            // encoded batch — the real cost the bandwidth model charges
            GridMsg::Share { batch, .. } => 24 + batch.wire_len(),
            GridMsg::JournalBatch { records, .. } => {
                24 + records.iter().map(SealedRecord::wire_len).sum::<usize>()
            }
            GridMsg::JournalAck { .. } => 24,
            GridMsg::Takeover => 24,
            GridMsg::StealRequest => 24,
            GridMsg::StealTicket { .. } => 36,
            GridMsg::Steal { .. } => 32,
            GridMsg::StealRefused { .. } => 32,
            GridMsg::StealNotice { .. } => 44,
            GridMsg::SplitEscalate { .. } => 36,
            GridMsg::OfferSolicit => 24,
            GridMsg::SiteStatus { .. } => 36,
            GridMsg::Adopt { checkpoint, .. } => {
                64 + match checkpoint.as_deref() {
                    None => 0,
                    Some(Checkpoint::Light { level0 }) => 8 + level0.len() * 5,
                    Some(Checkpoint::Heavy { level0, learned }) => {
                        8 + level0.len() * 5
                            + learned.iter().map(|c| 8 + c.len() * 4).sum::<usize>()
                    }
                }
            }
        }
    }

    fn label(&self) -> String {
        match self {
            GridMsg::Register { .. } => "register".into(),
            GridMsg::SplitRequest { .. } => "split-request(1)".into(),
            GridMsg::SplitDone { ok, .. } => {
                format!("split-done({})", if *ok { "ok" } else { "fail" })
            }
            GridMsg::Result {
                result: SubResult::Sat(_),
                ..
            } => "result(SAT)".into(),
            GridMsg::Result {
                result: SubResult::Unsat,
                ..
            } => "result(UNSAT)".into(),
            GridMsg::LoadReport { .. } => "load-report".into(),
            GridMsg::Heartbeat => "heartbeat".into(),
            GridMsg::Requeue { .. } => "requeue".into(),
            GridMsg::CheckpointMsg { .. } => "checkpoint".into(),
            GridMsg::Solve { .. } => "solve".into(),
            GridMsg::SplitGrant { .. } => "split-grant(2)".into(),
            GridMsg::Migrate { .. } => "migrate".into(),
            GridMsg::Peers { .. } => "peers".into(),
            GridMsg::Terminate(_) => "terminate".into(),
            GridMsg::Subproblem { .. } => "subproblem(3)".into(),
            GridMsg::Share { .. } => "share".into(),
            GridMsg::JournalBatch { records, .. } => format!("journal-batch({})", records.len()),
            GridMsg::JournalAck { .. } => "journal-ack".into(),
            GridMsg::Takeover => "takeover".into(),
            GridMsg::Adopt { .. } => "adopt".into(),
            GridMsg::StealRequest => "steal-request".into(),
            GridMsg::StealTicket { .. } => "steal-ticket".into(),
            GridMsg::Steal { .. } => "steal".into(),
            GridMsg::StealRefused { .. } => "steal-refused".into(),
            GridMsg::StealNotice { .. } => "steal-notice".into(),
            GridMsg::SplitEscalate { .. } => "split-escalate".into(),
            GridMsg::OfferSolicit => "offer-solicit".into(),
            GridMsg::SiteStatus { .. } => "site-status".into(),
        }
    }

    /// Flip one bit in the message's real byte payload, if it has one.
    /// Scalar-only messages return `false` and are dropped by the engine
    /// instead (header corruption: the frame itself is unreadable).
    fn corrupt(&mut self, seed: u64) -> bool {
        match self {
            GridMsg::Requeue { spec, .. }
            | GridMsg::Solve { spec, .. }
            | GridMsg::Subproblem { spec, .. } => {
                spec.corrupt_bit(seed);
                true
            }
            // copy-on-write: the relay fan-out shares this buffer, and
            // only this delivery saw the flipped bit
            GridMsg::Share { batch, .. } => {
                Arc::make_mut(batch).corrupt_bit(seed);
                true
            }
            GridMsg::JournalBatch { records, .. } if !records.is_empty() => {
                let victim = (seed as usize) % records.len();
                records[victim].corrupt_bit(seed);
                true
            }
            _ => false,
        }
    }

    fn payload_intact(&self) -> bool {
        match self {
            GridMsg::Requeue { spec, .. }
            | GridMsg::Solve { spec, .. }
            | GridMsg::Subproblem { spec, .. } => spec.intact(),
            GridMsg::Share { batch, .. } => batch.intact(),
            // journal batches are deliberately let through: records are
            // sealed individually, and the standby rejects bad ones and
            // withholds its ack so the master re-sends from the last
            // verified record
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{self, FRAME_HEADER_BYTES};
    use gridsat_solver::SplitSpec;

    fn share_of(clauses: Vec<Clause>) -> GridMsg {
        let shares: Vec<(Clause, u64)> = clauses
            .into_iter()
            .map(|c| {
                let fp = c.fingerprint();
                (c, fp)
            })
            .collect();
        GridMsg::Share {
            batch: Arc::new(EncodedBatch::encode(&shares)),
            origin: NodeId(1),
            epoch: 0,
        }
    }

    #[test]
    fn sizes_scale_with_payload() {
        let small = share_of(vec![Clause::new([Lit::pos(0)])]);
        let big = share_of(vec![
            Clause::new((0..50).map(Lit::pos)),
            Clause::new((0..50).map(Lit::neg)),
        ]);
        assert!(big.size_bytes() > small.size_bytes());

        let spec = SplitSpec {
            num_vars: 10,
            assumptions: vec![(Lit::pos(0), true)],
            clauses: vec![Clause::new([Lit::pos(1), Lit::pos(2)])],
        };
        let sub = GridMsg::Subproblem {
            spec: Box::new(SpecFrame::seal(&spec)),
            sent_at: 0.0,
            problem: ProblemId::new(NodeId(1), 1),
            stolen: false,
        };
        // the size model is the exact encoded length plus the checksum
        // frame — still tighter than the old approximate model
        assert_eq!(
            sub.size_bytes(),
            24 + FRAME_HEADER_BYTES + wire::spec_wire_bytes(&spec)
        );
        assert!(sub.size_bytes() < 24 + spec.approx_message_bytes());
    }

    #[test]
    fn corruption_mangles_real_payloads_and_receivers_notice() {
        let spec = SplitSpec {
            num_vars: 10,
            assumptions: vec![(Lit::pos(0), true)],
            clauses: vec![Clause::new([Lit::pos(1), Lit::pos(2)])],
        };
        let mut sub = GridMsg::Subproblem {
            spec: Box::new(SpecFrame::seal(&spec)),
            sent_at: 0.0,
            problem: ProblemId::new(NodeId(1), 1),
            stolen: false,
        };
        assert!(sub.payload_intact());
        assert!(sub.corrupt(7), "spec transfers carry real bytes");
        assert!(!sub.payload_intact(), "a flipped bit must fail the check");

        let mut share = share_of(vec![Clause::new([Lit::pos(0)])]);
        assert!(share.corrupt(9));
        assert!(!share.payload_intact());

        // scalar-only control: no byte payload to flip — dropped instead
        let mut hb = GridMsg::Heartbeat;
        assert!(!hb.corrupt(3));
        assert!(hb.payload_intact());
    }

    #[test]
    fn a_corrupted_journal_batch_is_delivered_for_per_record_rejection() {
        use crate::journal::{JournalRecord, SealedRecord};
        let records = vec![
            SealedRecord::seal(0, &JournalRecord::ClientIdle { client: NodeId(1) }),
            SealedRecord::seal(1, &JournalRecord::ClientIdle { client: NodeId(2) }),
        ];
        let mut batch = GridMsg::JournalBatch { start: 0, records };
        assert!(batch.corrupt(5), "journal batches carry real bytes");
        assert!(
            batch.payload_intact(),
            "the batch still travels: the standby rejects record by record"
        );
        let GridMsg::JournalBatch { records, .. } = batch else {
            unreachable!()
        };
        let bad = records.iter().filter(|r| !r.intact()).count();
        assert_eq!(bad, 1, "exactly one record took the flipped bit");
    }

    #[test]
    fn control_classification_protects_the_protocol_messages() {
        assert!(GridMsg::Result {
            result: SubResult::Unsat,
            problem: ProblemId::new(NodeId(1), 0)
        }
        .is_control());
        assert!(GridMsg::SplitGrant {
            peer: NodeId(2),
            problem: ProblemId::new(NodeId(0), 0)
        }
        .is_control());
        assert!(GridMsg::Terminate(EndReason::Sat).is_control());
        // the lossy-by-design streams
        assert!(!share_of(vec![]).is_control());
        assert!(!GridMsg::LoadReport { availability: 1.0 }.is_control());
        assert!(!GridMsg::Peers {
            epoch: 0,
            peers: vec![]
        }
        .is_control());
        assert!(!GridMsg::Heartbeat.is_control());
        // steal protocol: tickets/steals/notices/escalations are load-
        // bearing, idle announcements and site telemetry are lossy
        let pid = ProblemId::new(NodeId(3), 1);
        assert!(GridMsg::StealTicket {
            donor: NodeId(3),
            problem: pid
        }
        .is_control());
        assert!(GridMsg::Steal { problem: pid }.is_control());
        assert!(GridMsg::StealNotice {
            thief: NodeId(4),
            problem: pid,
            at: 1.0
        }
        .is_control());
        assert!(GridMsg::SplitEscalate {
            requester: NodeId(3),
            problem: pid
        }
        .is_control());
        assert!(!GridMsg::StealRequest.is_control());
        assert!(!GridMsg::SiteStatus {
            idle: 1,
            busy: 2,
            steals: 3
        }
        .is_control());
        // both ends of a lost pull recover on their own timers: a
        // refused thief re-announces, a solicited broker re-escalates
        assert!(!GridMsg::StealRefused { problem: pid }.is_control());
        assert!(!GridMsg::OfferSolicit.is_control());
        assert_eq!(
            GridMsg::StealRefused { problem: pid }.kind_str(),
            "steal_refused"
        );
        assert_eq!(GridMsg::OfferSolicit.kind_str(), "offer_solicit");
    }

    #[test]
    fn labels_carry_figure3_numbers() {
        assert!(GridMsg::SplitRequest {
            problem: ProblemId::new(NodeId(1), 0)
        }
        .label()
        .contains("(1)"));
        assert!(GridMsg::SplitGrant {
            peer: NodeId(2),
            problem: ProblemId::new(NodeId(0), 0)
        }
        .label()
        .contains("(2)"));
        let spec = SplitSpec {
            num_vars: 1,
            assumptions: vec![],
            clauses: vec![],
        };
        assert!(GridMsg::Subproblem {
            spec: Box::new(SpecFrame::seal(&spec)),
            sent_at: 0.0,
            problem: ProblemId::new(NodeId(1), 2),
            stolen: false
        }
        .label()
        .contains("(3)"));
    }
}
