//! Seed-driven decode fuzzing: every decoder that faces external bytes
//! must return an error on mangled input — never panic — and must
//! round-trip clean input exactly. Covers the three wire decoders:
//! checksummed frames ([`wire::open_frame`]), clause-share batches
//! ([`EncodedBatch`]), and sealed journal records ([`SealedRecord`]).
//!
//! The generator is a plain xorshift so failures reproduce from the
//! printed seed alone (`DECODE_FUZZ_SEED=<n>`), and the iteration count
//! scales down with `DECODE_FUZZ_ITERS` for smoke runs.

use gridsat::journal::{JournalRecord, SealedRecord};
use gridsat::msg::{Checkpoint, ProblemId};
use gridsat::wire::{self, EncodedBatch, SpecFrame};
use gridsat_cnf::{Clause, Lit};
use gridsat_grid::NodeId;
use gridsat_solver::SplitSpec;

const DEFAULT_ITERS: u64 = 10_000;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn iters() -> u64 {
    std::env::var("DECODE_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_ITERS)
}

fn seed() -> u64 {
    std::env::var("DECODE_FUZZ_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5eed_cafe)
}

/// A random clause already in the codec's canonical form (distinct
/// variables, ascending), so an encode/decode round-trip is exact.
fn random_clause(rng: &mut Rng) -> Clause {
    let len = 1 + rng.below(6);
    let mut vars: Vec<u32> = (0..len).map(|_| rng.below(40) as u32).collect();
    vars.sort_unstable();
    vars.dedup();
    Clause::new(vars.into_iter().map(|var| {
        if rng.next() & 1 == 0 {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }))
}

fn random_spec(rng: &mut Rng) -> SplitSpec {
    SplitSpec {
        num_vars: 40,
        assumptions: (0..rng.below(5))
            .map(|_| (Lit::pos(rng.below(40) as u32), rng.next() & 1 == 0))
            .collect(),
        clauses: (0..rng.below(8)).map(|_| random_clause(rng)).collect(),
    }
}

fn random_record(rng: &mut Rng) -> JournalRecord {
    match rng.below(4) {
        0 => JournalRecord::ClientIdle {
            client: NodeId(rng.below(9) as u32),
        },
        1 => JournalRecord::Launch {
            client: NodeId(rng.below(9) as u32),
            memory: rng.below(1 << 20),
            speed: rng.below(4000) as f64,
            availability: 0.5,
            at: rng.below(1000) as f64,
        },
        2 => JournalRecord::BacklogPush {
            client: NodeId(rng.below(9) as u32),
        },
        _ => JournalRecord::CheckpointAccept {
            client: NodeId(rng.below(9) as u32),
            problem: ProblemId::new(NodeId(1), rng.next() as u32 & 0xffff),
            checkpoint: Checkpoint::Heavy {
                level0: vec![(Lit::pos(rng.below(40) as u32), false)],
                learned: (0..rng.below(3)).map(|_| random_clause(rng)).collect(),
            },
            learn_problem: rng.next() & 1 == 0,
        },
    }
}

/// Mangle `clean` one of three ways: truncate, flip 1–8 bits, or
/// replace with unstructured garbage.
fn mangle(rng: &mut Rng, clean: &[u8]) -> Vec<u8> {
    match rng.below(3) {
        0 => clean[..rng.below(clean.len().max(1))].to_vec(),
        1 => {
            let mut bad = clean.to_vec();
            if !bad.is_empty() {
                for _ in 0..1 + rng.below(8) {
                    let bit = rng.below(bad.len() * 8);
                    bad[bit / 8] ^= 1 << (bit % 8);
                }
            }
            bad
        }
        _ => (0..rng.below(200)).map(|_| rng.next() as u8).collect(),
    }
}

/// Mangled frames must error (or, when a bit flip happens to leave the
/// header parseable but touch nothing checked, still decode to *some*
/// payload without panicking — CRC32 catches every 1–8 bit flip, so in
/// practice only the identity mangle survives).
#[test]
fn fuzz_frame_decoder_never_panics() {
    let mut rng = Rng(seed() | 1);
    for i in 0..iters() {
        let payload: Vec<u8> = (0..rng.below(64)).map(|_| rng.next() as u8).collect();
        let clean = wire::seal_frame(&payload);
        assert_eq!(
            wire::open_frame(&clean).expect("clean frame opens"),
            &payload[..],
            "iter {i}: clean round-trip"
        );
        let bad = mangle(&mut rng, &clean);
        if bad != clean {
            assert!(
                wire::open_frame(&bad).is_err(),
                "iter {i}: mangled frame decoded (seed {})",
                seed()
            );
        }
    }
}

#[test]
fn fuzz_share_batch_decoder_never_panics() {
    let mut rng = Rng(seed() | 1);
    for i in 0..iters() {
        let shares: Vec<(Clause, u64)> = (0..rng.below(6))
            .map(|_| {
                let c = random_clause(&mut rng);
                let fp = c.fingerprint();
                (c, fp)
            })
            .collect();
        let clean = EncodedBatch::encode(&shares);
        assert_eq!(
            clean.decode().expect("clean batch decodes"),
            shares,
            "iter {i}: clean round-trip"
        );
        let mut bad = clean.clone();
        bad.corrupt_bit(rng.next());
        // a single flipped bit must never pass the CRC
        assert!(
            bad.decode().is_err(),
            "iter {i}: bit-flipped batch decoded (seed {})",
            seed()
        );
        // unstructured garbage must error, not panic
        let garbage =
            EncodedBatch::from_wire((0..rng.below(200)).map(|_| rng.next() as u8).collect());
        let _ = garbage.decode();
    }
}

#[test]
fn fuzz_spec_frame_decoder_never_panics() {
    let mut rng = Rng(seed() | 1);
    for i in 0..iters() {
        let spec = random_spec(&mut rng);
        let clean = SpecFrame::seal(&spec);
        assert_eq!(
            clean.open().expect("clean spec opens"),
            spec,
            "iter {i}: clean round-trip"
        );
        let mut bad = clean.clone();
        bad.corrupt_bit(rng.next());
        assert!(
            bad.open().is_err(),
            "iter {i}: bit-flipped spec frame opened (seed {})",
            seed()
        );
        let garbage = SpecFrame::from_wire((0..rng.below(200)).map(|_| rng.next() as u8).collect());
        let _ = garbage.open();
    }
}

#[test]
fn fuzz_sealed_record_decoder_never_panics() {
    let mut rng = Rng(seed() | 1);
    for i in 0..iters() {
        let rec = random_record(&mut rng);
        let seq = rng.next() & 0xffff_ffff;
        let clean = SealedRecord::seal(seq, &rec);
        let (got_seq, got_rec) = clean.open().expect("clean record opens");
        assert_eq!(
            (got_seq, &got_rec),
            (seq, &rec),
            "iter {i}: clean round-trip"
        );
        let mut bad = clean.clone();
        bad.corrupt_bit(rng.next());
        assert!(
            bad.open().is_err(),
            "iter {i}: bit-flipped record opened (seed {})",
            seed()
        );
        let garbage =
            SealedRecord::from_wire((0..rng.below(200)).map(|_| rng.next() as u8).collect());
        let _ = garbage.open();
    }
}
