//! The paper's Section 3.4 checkpointing sketch, exercised end to end:
//! a busy client is killed mid-run. Without checkpointing the run aborts
//! (the paper's "limited form of recovery" tolerates only idle-client
//! loss); with light checkpointing the master reassigns the lost
//! subproblem and the run completes correctly.
//!
//!     cargo run --release -p gridsat-examples --bin fault_tolerance

use gridsat::{experiment, CheckpointMode, GridConfig, GridOutcome};
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;

fn run(checkpoint: CheckpointMode) -> GridOutcome {
    let formula = satgen::php::php(9, 8);
    let mut testbed = Testbed::uniform(5, 1000.0, 3 << 20);
    // worker n1 (which receives the whole problem first) dies at t=60
    testbed.hosts[1].down_at = 60.0;
    let config = GridConfig {
        checkpoint,
        checkpoint_period: 10.0,
        min_split_timeout: 5.0,
        ..GridConfig::default()
    };
    experiment::run(&formula, testbed, config).outcome
}

fn main() {
    println!("killing a busy client at t=60 s...");

    let without = run(CheckpointMode::Off);
    println!("  checkpointing off:   {:?}", without.table_cell());
    assert_eq!(
        without,
        GridOutcome::ClientLost,
        "paper: the run cannot continue"
    );

    let light = run(CheckpointMode::Light);
    println!("  light checkpoints:   {:?}", light.table_cell());
    assert_eq!(
        light,
        GridOutcome::Unsat,
        "recovered and finished correctly"
    );

    let heavy = run(CheckpointMode::Heavy);
    println!("  heavy checkpoints:   {:?}", heavy.table_cell());
    assert_eq!(heavy, GridOutcome::Unsat);

    println!(
        "\nWith checkpointing, the master reconstructs the lost subproblem \
         (level-0 assignment, plus learned clauses for heavy checkpoints) and \
         reassigns it to an idle client — the answer is still correct."
    );
}
