//! Solve a DIMACS CNF file — sequentially or on the simulated Grid.
//!
//!     cargo run --release -p gridsat-examples --bin solve_dimacs -- FILE [--grid N] [--proof OUT.drat]
//!
//! `--proof` records a DRAT trace for sequential UNSAT answers, verifies
//! it with the built-in RUP checker, and writes it to the given path.
//! Without a file argument, a demo instance is written to a temp path and
//! solved, so the example is runnable out of the box.

use gridsat::{experiment, GridConfig, GridOutcome};
use gridsat_grid::Testbed;
use gridsat_solver::{driver, SolverConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = match args.get(1) {
        Some(p) if p != "--grid" => p.clone(),
        _ => {
            // self-demo: write php(7,6) to a temp file
            let f = gridsat_satgen::php::php(7, 6);
            let path = std::env::temp_dir().join("gridsat-demo.cnf");
            let mut out = std::fs::File::create(&path).expect("create temp cnf");
            gridsat_cnf::write_dimacs(&mut out, &f).expect("write cnf");
            println!(
                "(no file given; demo instance written to {})",
                path.display()
            );
            path.to_string_lossy().into_owned()
        }
    };
    let grid_hosts: Option<usize> = args
        .iter()
        .position(|a| a == "--grid")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok());
    let proof_path: Option<String> = args
        .iter()
        .position(|a| a == "--proof")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let formula = match gridsat_cnf::parse_dimacs_file(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "{}: {} vars, {} clauses",
        formula.name().unwrap_or(&path),
        formula.num_vars(),
        formula.num_clauses()
    );

    match grid_hosts {
        None => {
            let (report, proof) = {
                let mut solver = gridsat_solver::Solver::new(&formula, SolverConfig::default());
                if proof_path.is_some() {
                    solver.enable_proof();
                }
                let report = driver::run(&mut solver, driver::Limits::default());
                (report, solver.take_proof())
            };
            if let (Some(path), Some(proof)) = (&proof_path, &proof) {
                if matches!(report.outcome, driver::Outcome::Unsat) {
                    gridsat_solver::proof::check(&formula, proof)
                        .expect("recorded proof must verify");
                    std::fs::write(path, proof.to_drat()).expect("write proof");
                    eprintln!(
                        "c DRAT proof verified ({} lemmas) and written to {path}",
                        proof.additions()
                    );
                }
            }
            match report.outcome {
                driver::Outcome::Sat(model) => {
                    assert!(formula.is_satisfied_by(&model));
                    println!("s SATISFIABLE");
                    let lits: Vec<String> = model
                        .to_lits()
                        .iter()
                        .map(|l| l.to_dimacs().to_string())
                        .collect();
                    println!("v {} 0", lits.join(" "));
                }
                driver::Outcome::Unsat => println!("s UNSATISFIABLE"),
                other => println!("s UNKNOWN ({other:?})"),
            }
            eprintln!(
                "c {} decisions, {} conflicts, {} learned",
                report.stats.decisions, report.stats.conflicts, report.stats.learned
            );
        }
        Some(n) => {
            let report = experiment::run(
                &formula,
                Testbed::uniform(n, 1000.0, 3 << 20),
                GridConfig::default(),
            );
            match report.outcome {
                GridOutcome::Sat(model) => {
                    assert!(formula.is_satisfied_by(&model));
                    println!("s SATISFIABLE (grid, {:.0} simulated s)", report.seconds);
                }
                GridOutcome::Unsat => {
                    println!("s UNSATISFIABLE (grid, {:.0} simulated s)", report.seconds)
                }
                other => println!("s UNKNOWN ({other:?})"),
            }
            eprintln!(
                "c {} splits, {} clause batches shared, max {} clients",
                report.master.splits,
                report.clients.share_batches_sent,
                report.master.max_active_clients
            );
        }
    }
}
