//! A mini research campaign on the paper's GrADS testbed: run a handful
//! of instances from different families on the simulated 34-host Grid and
//! print a Table-1-style comparison against the sequential baseline.
//!
//!     cargo run --release -p gridsat-examples --bin grid_campaign

use gridsat::{experiment, GridConfig, GridOutcome};
use gridsat_cnf::Formula;
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;
use gridsat_solver::{driver, SolverConfig};

fn instances() -> Vec<Formula> {
    vec![
        satgen::php::php(9, 8),
        satgen::xor::urquhart(12, 7),
        satgen::xor::parity(80, 70, 5, true, 15),
        satgen::random_ksat::random_ksat(150, 630, 3, 5),
        satgen::factoring::factoring(176_399, 10, 18), // 419 * 421
        satgen::coloring::grid_coloring(6, 8, 2),
    ]
}

fn main() {
    println!(
        "{:<28} {:>9} {:>9} {:>8} {:>7} {:>7}",
        "instance", "seq (s)", "grid (s)", "speedup", "splits", "max cl"
    );
    for f in instances() {
        let seq = driver::solve(
            &f,
            SolverConfig::sequential_baseline(3 << 20),
            driver::Limits::with_max_work(18_000_000),
        );
        let seq_s = seq.stats.work as f64 / 1000.0;
        let grid = experiment::run(&f, Testbed::grads(), GridConfig::default());
        let (grid_s, speedup) = match grid.outcome {
            GridOutcome::Sat(_) | GridOutcome::Unsat => (
                format!("{:.0}", grid.seconds),
                format!("{:.2}", seq_s / grid.seconds),
            ),
            _ => ("-".into(), "-".into()),
        };
        println!(
            "{:<28} {:>9.0} {:>9} {:>8} {:>7} {:>7}",
            f.name().unwrap_or("?"),
            seq_s,
            grid_s,
            speedup,
            grid.master.splits,
            grid.master.max_active_clients
        );
    }
    println!(
        "\nThe pattern mirrors the paper: short instances pay communication \
         overhead (speed-up < 1), long ones gain from splitting + sharing."
    );
}
