//! Quickstart: solve a SAT instance sequentially, then on a simulated
//! Grid, and compare.
//!
//!     cargo run --release -p gridsat-examples --bin quickstart

use gridsat::{experiment, GridConfig, GridOutcome};
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;
use gridsat_solver::{driver, SolverConfig};

fn main() {
    // 1. Generate an instance: the pigeonhole principle php(9,8)
    //    ("9 pigeons cannot fit in 8 holes") — a classic hard UNSAT family.
    let formula = satgen::php::php(9, 8);
    println!(
        "instance: {} ({} vars, {} clauses)",
        formula.name().unwrap_or("?"),
        formula.num_vars(),
        formula.num_clauses()
    );

    // 2. Sequential solve with the zChaff-style core.
    let report = driver::solve(&formula, SolverConfig::default(), driver::Limits::default());
    println!(
        "sequential: {} after {} conflicts ({} work units)",
        report.outcome.table_cell(),
        report.stats.conflicts,
        report.stats.work
    );

    // 3. The same instance on a simulated 8-host Grid: GridSAT splits the
    //    search space on demand and shares short learned clauses.
    let grid = experiment::run(
        &formula,
        Testbed::uniform(8, 1000.0, 3 << 20),
        GridConfig {
            min_split_timeout: 5.0, // split eagerly on this small demo
            ..GridConfig::default()
        },
    );
    println!(
        "gridsat:    {} in {:.0} simulated seconds, {} splits, max {} active clients",
        grid.outcome.table_cell(),
        grid.seconds,
        grid.master.splits,
        grid.master.max_active_clients
    );
    assert!(matches!(grid.outcome, GridOutcome::Unsat));

    // 4. A satisfiable instance returns a verified model.
    let sat = satgen::random_ksat::planted_ksat(60, 250, 3, 42);
    let grid = experiment::run(
        &sat,
        Testbed::uniform(4, 1000.0, 3 << 20),
        GridConfig::default(),
    );
    match grid.outcome {
        GridOutcome::Sat(model) => {
            assert!(sat.is_satisfied_by(&model));
            println!("planted instance: SAT, model verified against the original formula");
        }
        other => panic!("expected SAT, got {other:?}"),
    }
}
