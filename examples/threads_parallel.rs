//! Real parallelism: the same GridSAT master/client processes running on
//! OS threads with crossbeam channels — no simulation, real wall-clock
//! speedup on a multicore machine.
//!
//!     cargo run --release -p gridsat-examples --bin threads_parallel

use gridsat::{Client, GridConfig, GridNode, Master};
use gridsat_grid::{NodeId, Site, ThreadGrid};
use gridsat_satgen as satgen;
use gridsat_solver::{driver, SolverConfig};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

fn main() {
    let formula = satgen::random_ksat::random_ksat(200, 920, 3, 1);
    println!(
        "instance: {} ({} vars, {} clauses)",
        formula.name().unwrap_or("?"),
        formula.num_vars(),
        formula.num_clauses()
    );

    // sequential wall time
    let t0 = Instant::now();
    let seq = driver::solve(&formula, SolverConfig::default(), driver::Limits::default());
    let seq_wall = t0.elapsed();
    println!(
        "sequential: {} in {:.2?}",
        seq.outcome.table_cell(),
        seq_wall
    );

    // threaded GridSAT: node 0 is the master, workers solve
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).clamp(2, 12))
        .unwrap_or(4);
    println!("threads:    spawning 1 master + {workers} worker threads");

    let config = GridConfig {
        // thread-backend clocks are wall seconds and NodeInfo.speed is 1,
        // so work_quantum_s is directly the work units per tick
        min_split_timeout: 0.05,
        work_quantum_s: 30_000.0,
        load_report_period: 1.0,
        master_period: 0.02,
        migration: false, // real hardware is homogeneous here
        ..GridConfig::default()
    };
    let host_info: BTreeMap<NodeId, (f64, Site)> = (0..=workers as u32)
        .map(|i| (NodeId(i), (1.0, Site::Ucsd)))
        .collect();
    let f2 = formula.clone();
    let t0 = Instant::now();
    let grid = ThreadGrid::spawn(workers + 1, 3 << 20, move |id| {
        if id == NodeId(0) {
            GridNode::Master(Box::new(Master::new(
                f2.clone(),
                config.clone(),
                host_info.clone(),
            )))
        } else {
            GridNode::Client(Box::new(Client::new(NodeId(0), config.clone())))
        }
    });
    let nodes = grid.join(Duration::from_secs(120));
    let par_wall = t0.elapsed();

    let GridNode::Master(master) = &nodes[0] else {
        panic!("node 0 is the master")
    };
    let outcome = master.outcome().expect("finished within the timeout");
    println!(
        "threaded:   {} in {:.2?} ({} splits, max {} active clients)",
        outcome.table_cell(),
        par_wall,
        master.stats.splits,
        master.stats.max_active_clients
    );
    println!(
        "wall-clock speedup: {:.2}x on {} worker threads",
        seq_wall.as_secs_f64() / par_wall.as_secs_f64(),
        workers
    );
    if std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        <= 2
    {
        println!("(few cores available: expect overhead, not speedup, on this machine)");
    }
}
