//! Shared helpers for the GridSAT examples (see the sibling `*.rs`
//! binaries: `quickstart`, `solve_dimacs`, `grid_campaign`,
//! `threads_parallel`, `fault_tolerance`).
