//! Integration test for the Figure 2 reproduction: the split stack
//! transformation and clause reduction, checked end to end.

use gridsat_cnf::{paper, Lit, Value};
use gridsat_solver::{Solver, SolverConfig};
use gridsat_tests::solve_to_end;

/// Reach the paper's post-conflict stack state.
fn post_conflict_solver() -> Solver {
    let mut s = Solver::new(&paper::fig1_formula(), SolverConfig::default());
    for d in &paper::fig1_decisions()[..5] {
        s.assume_decision(*d).unwrap();
        assert!(s.propagate_manual().is_none());
    }
    s.assume_decision(paper::fig1_decisions()[5]).unwrap();
    let (confl, _) = s.propagate_manual().expect("conflict");
    let a = s.analyze(confl);
    s.learn(&a);
    s
}

#[test]
fn split_promotes_level_one_and_complements_the_decision() {
    let mut a = post_conflict_solver();
    let levels_before = a.decision_level();
    assert_eq!(levels_before, 4);

    let spec = a.split_off().expect("splittable");

    // client A: old level 1 (V10, ~V13) absorbed into level 0
    assert_eq!(a.decision_level(), levels_before - 1);
    assert_eq!(a.var_decision_level(gridsat_cnf::Var(9)), Some(0));
    assert_eq!(a.var_decision_level(gridsat_cnf::Var(12)), Some(0));
    a.check_invariants();

    // client B: level 0 + complement of the first decision
    let lits: Vec<Lit> = spec.assumptions.iter().map(|&(l, _)| l).collect();
    assert_eq!(lits, vec![Lit::from_dimacs(14), Lit::from_dimacs(-10)]);

    // clause reduction: clauses 7, 8, 9 and the learned clause are
    // satisfied at B's level 0 and do not transfer
    assert_eq!(spec.clauses.len(), 6, "10 clauses minus 4 satisfied");

    // clauses transfer unstripped (no false-literal removal), so they
    // stay valid for the original problem
    for c in &spec.clauses {
        let orig = paper::fig1_formula();
        let cn = c.normalized().unwrap();
        assert!(
            orig.clauses()
                .iter()
                .any(|o| o.normalized().unwrap().lits() == cn.lits()),
            "transferred clause {c} must be an original clause, unstripped"
        );
    }
}

#[test]
fn both_halves_solve_and_cover_the_space() {
    let mut a = post_conflict_solver();
    let spec = a.split_off().unwrap();
    let mut b = Solver::from_split(&spec, SolverConfig::default());

    let sa = solve_to_end(&mut a);
    let sb = solve_to_end(&mut b);
    // the fig1 formula is satisfiable; at least one half must find it
    assert!(sa == gridsat_solver::SolveStatus::Sat || sb == gridsat_solver::SolveStatus::Sat);
    for (s, solver) in [(sa, &a), (sb, &b)] {
        if s == gridsat_solver::SolveStatus::Sat {
            let model = solver.model().unwrap();
            assert!(paper::fig1_formula().is_satisfied_by(&model));
        }
    }
}

#[test]
fn b_side_assumption_forces_the_complement() {
    let mut a = post_conflict_solver();
    let spec = a.split_off().unwrap();
    let b = Solver::from_split(&spec, SolverConfig::default());
    if b.status().is_none() {
        assert_eq!(b.lit_value(Lit::from_dimacs(-10)), Value::True);
        assert_eq!(b.var_decision_level(gridsat_cnf::Var(9)), Some(0));
    }
}
