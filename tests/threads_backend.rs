//! The same GridSAT master/client processes on the real-thread backend:
//! answers must match the simulator and the sequential core.

use gridsat::{Client, GridConfig, GridNode, GridOutcome, Master};
use gridsat_grid::{NodeId, Site, ThreadGrid};
use gridsat_satgen as satgen;
use std::collections::BTreeMap;
use std::time::Duration;

fn run_threaded(f: &gridsat_cnf::Formula, workers: u32) -> GridOutcome {
    let config = GridConfig {
        min_split_timeout: 0.05,
        work_quantum_s: 20_000.0, // thread speed is 1.0: units per tick
        load_report_period: 0.5,
        master_period: 0.02,
        migration: false,
        ..GridConfig::default()
    };
    let host_info: BTreeMap<NodeId, (f64, Site)> = (0..=workers)
        .map(|i| (NodeId(i), (1.0, Site::Ucsd)))
        .collect();
    let f2 = f.clone();
    let grid = ThreadGrid::spawn(workers as usize + 1, 3 << 20, move |id| {
        if id == NodeId(0) {
            GridNode::Master(Box::new(Master::new(
                f2.clone(),
                config.clone(),
                host_info.clone(),
            )))
        } else {
            GridNode::Client(Box::new(Client::new(NodeId(0), config.clone())))
        }
    });
    let nodes = grid.join(Duration::from_secs(60));
    let GridNode::Master(master) = &nodes[0] else {
        panic!("node 0 is the master")
    };
    master.outcome().cloned().expect("finished in time")
}

#[test]
fn threaded_unsat_agrees() {
    let f = satgen::php::php(8, 7);
    assert_eq!(run_threaded(&f, 3), GridOutcome::Unsat);
}

#[test]
fn threaded_sat_model_verifies() {
    let f = satgen::random_ksat::planted_ksat(60, 252, 3, 5);
    match run_threaded(&f, 3) {
        GridOutcome::Sat(model) => assert!(f.is_satisfied_by(&model)),
        other => panic!("{other:?}"),
    }
}
