//! Integration test for the Figure 3 reproduction: the five-message
//! split handshake, captured from a live simulated run.

use gridsat::{experiment, GridConfig};
use gridsat_grid::{NodeId, Testbed};
use gridsat_satgen as satgen;

type TraceRow = (f64, NodeId, NodeId, String, usize);

fn traced_run() -> (Vec<TraceRow>, String) {
    let f = satgen::php::php(8, 7);
    let config = GridConfig {
        min_split_timeout: 1.0,
        work_quantum_s: 0.5,
        ..GridConfig::default()
    };
    let mut sim = experiment::build_sim(&f, Testbed::uniform(3, 1000.0, 3 << 20), config);
    sim.enable_trace();
    sim.run_until(6000.0);
    let events = sim
        .trace_events()
        .iter()
        .map(|e| (e.time_s, e.from, e.to, e.label.clone(), e.bytes))
        .collect();
    let outcome = experiment::report(&sim, 6000.0).outcome.table_cell();
    (events, outcome)
}

#[test]
fn five_message_handshake_in_the_papers_order() {
    let (events, outcome) = traced_run();
    assert_eq!(outcome, "UNSAT", "php(8,7)");

    let start = events
        .iter()
        .position(|(_, _, _, l, _)| l.contains("split-request"))
        .expect("at least one split");
    let master = NodeId(0);

    // (1) requester -> master
    let (_, a, to, _, _) = &events[start];
    assert_eq!(*to, master);
    let a = *a;

    let handshake: Vec<&TraceRow> = events[start..]
        .iter()
        .filter(|(_, _, _, l, _)| {
            l.contains("split-request")
                || l.contains("split-grant")
                || l.contains("subproblem")
                || l.contains("split-done")
        })
        .take(5)
        .collect();
    assert_eq!(handshake.len(), 5);

    // (2) master -> requester: grant
    assert!(handshake[1].3.contains("split-grant"));
    assert_eq!(handshake[1].1, master);
    assert_eq!(handshake[1].2, a);

    // (3) requester -> peer: the big subproblem transfer
    assert!(handshake[2].3.contains("subproblem"));
    assert_eq!(handshake[2].1, a);
    let b = handshake[2].2;
    assert_ne!(b, master);

    // (4)/(5): both peers report to the master
    assert!(handshake[3].3.contains("split-done"));
    assert!(handshake[4].3.contains("split-done"));
    let reporters: Vec<NodeId> = vec![handshake[3].1, handshake[4].1];
    assert!(reporters.contains(&a));
    assert!(reporters.contains(&b));
    assert_eq!(handshake[3].2, master);
    assert_eq!(handshake[4].2, master);

    // the subproblem is by far the largest message of the handshake
    let sub_bytes = handshake[2].4;
    for (i, h) in handshake.iter().enumerate() {
        if i != 2 {
            assert!(
                sub_bytes > 10 * h.4,
                "subproblem ({} B) should dwarf control message {} ({} B)",
                sub_bytes,
                h.3,
                h.4
            );
        }
    }
}

#[test]
fn peer_to_peer_transfer_bypasses_the_master() {
    let (events, _) = traced_run();
    for (_, from, to, label, _) in &events {
        if label.contains("subproblem") {
            assert_ne!(*from, NodeId(0), "master never sends subproblem(3)");
            assert_ne!(
                *to,
                NodeId(0),
                "subproblem(3) never routes through the master"
            );
        }
    }
}
