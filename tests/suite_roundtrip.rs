//! The generated suite survives a DIMACS round trip and keeps its
//! statuses: generators -> files -> parser -> solver.

use gridsat_satgen::suite::{self, Status};
use gridsat_solver::{driver, SolverConfig};

#[test]
fn exported_instances_reparse_identically() {
    let dir = std::env::temp_dir().join("gridsat-suite-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    for spec in suite::table1_suite().iter().take(12) {
        let f = spec.formula();
        let path = dir.join(spec.paper_name);
        let mut out = std::fs::File::create(&path).unwrap();
        gridsat_cnf::write_dimacs(&mut out, &f).unwrap();
        drop(out);
        let g = gridsat_cnf::parse_dimacs_file(&path).unwrap();
        assert_eq!(f.num_vars(), g.num_vars(), "{}", spec.paper_name);
        assert_eq!(f.clauses(), g.clauses(), "{}", spec.paper_name);
    }
}

#[test]
fn quick_rows_solve_from_reparsed_files() {
    let dir = std::env::temp_dir().join("gridsat-suite-roundtrip2");
    std::fs::create_dir_all(&dir).unwrap();
    // the three fastest rows per the calibration
    for name in [
        "glassy-sat-sel_N210_n.cnf",
        "qg2-8.cnf",
        "pyhala-braun-sat-30-4-02.cnf",
    ] {
        let spec = suite::table1_suite()
            .into_iter()
            .find(|s| s.paper_name == name)
            .unwrap();
        let f = spec.formula();
        let path = dir.join(name);
        let mut out = std::fs::File::create(&path).unwrap();
        gridsat_cnf::write_dimacs(&mut out, &f).unwrap();
        drop(out);
        let g = gridsat_cnf::parse_dimacs_file(&path).unwrap();
        let r = driver::solve(&g, SolverConfig::default(), driver::Limits::default());
        match (r.outcome, spec.status) {
            (gridsat_solver::Outcome::Sat(m), Status::Sat) => assert!(g.is_satisfied_by(&m)),
            (gridsat_solver::Outcome::Unsat, Status::Unsat) => {}
            (o, s) => panic!("{name}: {o:?} vs {s:?}"),
        }
    }
}
