//! Reliability integration tests: the acked control plane, heartbeat
//! leases, and the chaos fault plans, checked end-to-end against the
//! sequential solver as a SAT/UNSAT oracle.

use gridsat::chaos::{CrashWindow, FaultPlan, LinkWindow};
use gridsat::{experiment, GridConfig, GridOutcome, GridReport};
use gridsat_cnf::Formula;
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;

fn chaos_config() -> GridConfig {
    GridConfig {
        min_split_timeout: 0.2,
        work_quantum_s: 0.1,
        ..GridConfig::chaos_hardened()
    }
}

fn run_with_plan(f: &Formula, plan: &FaultPlan, config: GridConfig) -> GridReport {
    let cap = config.overall_timeout;
    let mut sim = experiment::build_sim(f, Testbed::uniform(4, 1000.0, 3 << 20), config);
    plan.apply(&mut sim);
    sim.run_until(cap + 60.0);
    experiment::report(&sim, cap)
}

#[test]
fn fault_free_runs_pay_zero_retransmits() {
    // acceptance criterion: with no faults injected, the reliable layer
    // must be pure bookkeeping — no retransmit fires, nothing is deduped
    let f = satgen::php::php(7, 6);
    let r = run_with_plan(&f, &FaultPlan::default(), chaos_config());
    assert_eq!(r.outcome, GridOutcome::Unsat);
    assert_eq!(r.reliable.retransmits, 0, "no faults, no retransmits");
    assert_eq!(r.reliable.dup_drops, 0, "no faults, no duplicates");
    assert_eq!(r.reliable.expired, 0, "no faults, no expiries");
}

#[test]
fn lossy_network_heals_and_answers_correctly() {
    let f = satgen::php::php(7, 6);
    let r = run_with_plan(&f, &FaultPlan::drop_happy(5), chaos_config());
    assert_eq!(r.outcome, GridOutcome::Unsat);
    assert!(r.reliable.retransmits > 0, "8% loss must trigger retries");
}

#[test]
fn partitioned_busy_client_lease_expires_and_recovers() {
    // the first client takes the whole problem, then its link to the
    // master goes silent for longer than the lease
    // (heartbeat_period x lease_misses = 30 s): the master must expire
    // it and recover the subproblem from the checkpoint it holds
    let f = satgen::php::php(7, 6);
    let plan = FaultPlan {
        name: "partition".into(),
        links: vec![LinkWindow {
            a: 0,
            b: 1,
            down_at: 5.0,
            up_at: 50.0,
        }],
        ..FaultPlan::default()
    };
    let r = run_with_plan(&f, &plan, chaos_config());
    assert_eq!(r.outcome, GridOutcome::Unsat);
    assert!(
        r.master.lease_expiries >= 1,
        "the partition must be noticed"
    );
    assert!(r.master.recoveries >= 1, "the subproblem must be recovered");
}

#[test]
fn master_blink_is_survived() {
    let f = satgen::php::php(7, 6);
    let plan = FaultPlan {
        name: "blink".into(),
        crashes: vec![CrashWindow {
            node: 0,
            down_at: 10.0,
            up_at: Some(21.0),
        }],
        loss_prob: 0.02,
        seed: 3,
        ..FaultPlan::default()
    };
    let r = run_with_plan(&f, &plan, chaos_config());
    assert_eq!(r.outcome, GridOutcome::Unsat);
}

#[test]
fn sat_models_survive_chaos() {
    let f = satgen::random_ksat::planted_ksat(40, 160, 3, 9);
    let r = run_with_plan(&f, &FaultPlan::crash_restart(9), chaos_config());
    match r.outcome {
        GridOutcome::Sat(model) => assert!(f.is_satisfied_by(&model)),
        other => panic!("expected SAT, got {other:?}"),
    }
}

#[test]
fn dead_master_fails_over_to_the_standby() {
    // the master dies for good at t=8 on a lossy network; under the
    // failover profile node 1 tails the journal, notices the silence,
    // promotes itself, re-adopts the survivors, and drives the run to
    // the oracle's answer — with the conservation auditor cross-checking
    // that no cube is ever lost or double-assigned along the way
    let f = satgen::php::php(7, 6);
    let plan = FaultPlan::master_gone(3);
    let config = GridConfig {
        min_split_timeout: 0.2,
        work_quantum_s: 0.1,
        audit: true,
        ..GridConfig::failover_hardened()
    };
    let cap = config.overall_timeout;
    let mut sim = experiment::build_sim(&f, Testbed::uniform(4, 1000.0, 3 << 20), config);
    plan.apply(&mut sim);
    sim.run_until(cap + 60.0);
    let gridsat::GridNode::Standby(standby) = sim.process(gridsat_grid::NodeId(1)).inner() else {
        panic!("node 1 is the standby under failover_hardened");
    };
    let promoted = standby
        .promoted_master()
        .expect("the standby must have taken over");
    let snap = promoted.snapshot();
    assert!(snap.journal_len > 0, "the takeover master keeps journaling");
    // node 0 never came back, so only the promoted master can decide
    let r = experiment::report(&sim, cap);
    assert_eq!(r.outcome, GridOutcome::Unsat);
    assert_eq!(r.master.verification_failures, 0);
}

#[test]
fn failover_preserves_sat_models() {
    let f = satgen::random_ksat::planted_ksat(40, 160, 3, 5);
    let plan = FaultPlan::master_gone(5);
    let config = GridConfig {
        min_split_timeout: 0.2,
        work_quantum_s: 0.1,
        audit: true,
        ..GridConfig::failover_hardened()
    };
    let r = run_with_plan(&f, &plan, config);
    match r.outcome {
        GridOutcome::Sat(model) => assert!(f.is_satisfied_by(&model)),
        other => panic!("expected SAT through the failover, got {other:?}"),
    }
}

#[test]
fn unreliable_control_plane_wedges_detectably() {
    // kill the master for good under the paper-mode config (no acked
    // delivery, no leases, no master restart): the clients' reports go
    // nowhere, the cluster goes quiet, and quiescence detection reports
    // Wedged instead of spinning until the cap — a dead control plane
    // cannot hide behind a timeout
    let f = satgen::php::php(7, 6);
    let plan = FaultPlan {
        name: "master-gone".into(),
        crashes: vec![CrashWindow {
            node: 0,
            down_at: 10.0,
            up_at: None,
        }],
        ..FaultPlan::default()
    };
    let config = GridConfig {
        min_split_timeout: 0.2,
        work_quantum_s: 0.1,
        ..GridConfig::default()
    };
    let r = run_with_plan(&f, &plan, config);
    assert_eq!(r.outcome, GridOutcome::Wedged);
}
