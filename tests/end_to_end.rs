//! Whole-stack integration: generators -> sequential core -> Grid runs on
//! the paper's testbeds, answers cross-checked three ways.

use gridsat::{experiment, GridConfig, GridOutcome, SchedPolicy};
use gridsat_cnf::Formula;
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;
use gridsat_solver::SolveStatus;
use gridsat_tests::sequential_status;

fn grid_status(f: &Formula, testbed: Testbed, config: GridConfig) -> (GridOutcome, f64) {
    let r = experiment::run(f, testbed, config);
    (r.outcome, r.seconds)
}

fn check_agreement(f: &Formula, config: GridConfig) {
    let seq = sequential_status(f);
    let (grid, _) = grid_status(f, Testbed::grads(), config);
    match (seq, grid) {
        (SolveStatus::Sat, GridOutcome::Sat(model)) => {
            assert!(f.is_satisfied_by(&model), "{f:?}");
        }
        (SolveStatus::Unsat, GridOutcome::Unsat) => {}
        (s, g) => panic!("{f:?}: sequential {s:?} vs grid {g:?}"),
    }
}

#[test]
fn families_agree_on_the_grads_testbed() {
    let instances: Vec<Formula> = vec![
        satgen::php::php(8, 7),
        satgen::xor::urquhart(10, 3),
        satgen::xor::parity(40, 34, 4, true, 5),
        satgen::xor::parity(40, 34, 4, false, 5),
        satgen::random_ksat::planted_ksat(80, 340, 3, 9),
        satgen::qg::qg_unsat(6, 5, 2),
        satgen::factoring::factoring(1517, 6, 11),
        satgen::coloring::grid_coloring(5, 6, 2),
        satgen::hanoi::hanoi(3, 7),
        satgen::counter::counter(6, 40, 25),
    ];
    for f in &instances {
        check_agreement(f, GridConfig::default());
    }
}

#[test]
fn scheduler_policies_all_reach_the_right_answer() {
    let f = satgen::php::php(8, 7);
    for policy in [
        SchedPolicy::NwsRank,
        SchedPolicy::Random(7),
        SchedPolicy::WorstRank,
    ] {
        let config = GridConfig {
            scheduler: policy,
            min_split_timeout: 2.0,
            ..GridConfig::default()
        };
        let (outcome, _) = grid_status(&f, Testbed::grads(), config);
        assert_eq!(outcome, GridOutcome::Unsat, "{policy:?}");
    }
}

#[test]
fn share_limits_preserve_answers() {
    let f = satgen::xor::parity(36, 30, 4, false, 3);
    for limit in [None, Some(3), Some(10), Some(100)] {
        let config = GridConfig {
            share_len_limit: limit,
            min_split_timeout: 2.0,
            ..GridConfig::default()
        };
        let (outcome, _) = grid_status(&f, Testbed::grads(), config);
        assert_eq!(outcome, GridOutcome::Unsat, "limit {limit:?}");
    }
}

#[test]
fn set2_testbed_with_batch_nodes_works() {
    // batch nodes join at t=50 and speed the drain-phase up
    let f = satgen::php::php(9, 8);
    let testbed = Testbed::set2().with_blue_horizon(10, 50.0, 4000.0);
    let config = GridConfig {
        share_len_limit: Some(3),
        min_split_timeout: 5.0,
        ..GridConfig::default()
    };
    let (outcome, secs) = grid_status(&f, testbed, config);
    assert_eq!(outcome, GridOutcome::Unsat);
    assert!(secs < 6000.0);
}

#[test]
fn grads_run_is_deterministic() {
    let f = satgen::xor::urquhart(11, 4);
    let run = || {
        let r = experiment::run(&f, Testbed::grads(), GridConfig::default());
        (
            r.seconds,
            r.master.splits,
            r.clients.work,
            r.sim.messages_delivered,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn verification_failures_never_happen() {
    for seed in 0..4 {
        let f = satgen::random_ksat::planted_ksat(60, 255, 3, seed);
        let r = experiment::run(
            &f,
            Testbed::uniform(5, 1000.0, 3 << 20),
            GridConfig {
                min_split_timeout: 1.0,
                ..GridConfig::default()
            },
        );
        assert!(matches!(r.outcome, GridOutcome::Sat(_)));
        assert_eq!(r.master.verification_failures, 0);
    }
}

#[test]
fn dimacs_files_roundtrip_through_the_whole_stack() {
    let f = satgen::php::php(6, 5);
    let dir = std::env::temp_dir().join("gridsat-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("php65.cnf");
    let mut out = std::fs::File::create(&path).unwrap();
    gridsat_cnf::write_dimacs(&mut out, &f).unwrap();
    drop(out);

    let g = gridsat_cnf::parse_dimacs_file(&path).unwrap();
    assert_eq!(sequential_status(&g), SolveStatus::Unsat);
    let (outcome, _) = grid_status(
        &g,
        Testbed::uniform(3, 1000.0, 3 << 20),
        GridConfig::default(),
    );
    assert_eq!(outcome, GridOutcome::Unsat);
}
