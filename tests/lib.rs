//! Shared helpers for the cross-crate integration tests.

use gridsat_cnf::Formula;
use gridsat_solver::{SolveStatus, Solver, Step};

/// Drive a solver to completion (no limits) and return the status.
pub fn solve_to_end(solver: &mut Solver) -> SolveStatus {
    loop {
        match solver.step(1_000_000) {
            Step::Sat => return SolveStatus::Sat,
            Step::Unsat => return SolveStatus::Unsat,
            Step::Running | Step::MemoryPressure => {}
        }
    }
}

/// Sequential ground truth for a small formula.
pub fn sequential_status(f: &Formula) -> SolveStatus {
    gridsat_solver::driver::decide(f)
}
