//! Failure-model integration tests: the paper's "limited form of
//! recovery" (idle-client loss tolerated, busy-client loss fatal) and the
//! checkpointing extension that lifts the limitation.

use gridsat::{experiment, CheckpointMode, GridConfig, GridOutcome};
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;

#[test]
fn idle_client_deaths_are_tolerated() {
    // kill three clients that never receive work (they come up and then
    // leave); the run completes normally
    let f = satgen::php::php(8, 7);
    let mut tb = Testbed::uniform(6, 1000.0, 3 << 20);
    for i in [4usize, 5, 6] {
        tb.hosts[i].down_at = 2.0; // die before any split reaches them
    }
    let config = GridConfig {
        min_split_timeout: 20.0,
        ..GridConfig::default()
    };
    let r = experiment::run(&f, tb, config);
    assert_eq!(r.outcome, GridOutcome::Unsat);
}

#[test]
fn busy_client_death_without_checkpoints_is_fatal() {
    let f = satgen::php::php(9, 8);
    let mut tb = Testbed::uniform(4, 1000.0, 3 << 20);
    tb.hosts[1].down_at = 100.0; // the first client, mid-solve
    let r = experiment::run(&f, tb, GridConfig::default());
    assert_eq!(r.outcome, GridOutcome::ClientLost);
    assert!(r.seconds <= 101.0);
}

#[test]
fn checkpointing_survives_cascading_failures() {
    // two busy clients die at different times; light checkpoints recover
    // both subproblems and the answer stays correct
    let f = satgen::php::php(9, 8);
    let mut tb = Testbed::uniform(6, 1000.0, 3 << 20);
    tb.hosts[1].down_at = 80.0;
    tb.hosts[2].down_at = 160.0;
    let config = GridConfig {
        checkpoint: CheckpointMode::Light,
        checkpoint_period: 10.0,
        min_split_timeout: 15.0,
        ..GridConfig::default()
    };
    let r = experiment::run(&f, tb, config);
    assert_eq!(r.outcome, GridOutcome::Unsat);
    assert!(r.master.recoveries >= 1, "at least one recovery happened");
}

#[test]
fn heavy_checkpoints_preserve_learned_clauses() {
    let f = satgen::php::php(9, 8);
    let mut tb = Testbed::uniform(5, 1000.0, 3 << 20);
    tb.hosts[1].down_at = 120.0;
    let config = GridConfig {
        checkpoint: CheckpointMode::Heavy,
        checkpoint_period: 10.0,
        min_split_timeout: 15.0,
        ..GridConfig::default()
    };
    let r = experiment::run(&f, tb, config);
    assert_eq!(r.outcome, GridOutcome::Unsat);
    assert!(r.master.recoveries >= 1);
}

#[test]
fn sat_answers_survive_recovery() {
    for seed in [3u64, 5] {
        let f = satgen::random_ksat::planted_ksat(80, 336, 3, seed);
        let mut tb = Testbed::uniform(4, 1000.0, 3 << 20);
        tb.hosts[1].down_at = 30.0;
        let config = GridConfig {
            checkpoint: CheckpointMode::Light,
            checkpoint_period: 5.0,
            min_split_timeout: 10.0,
            ..GridConfig::default()
        };
        let r = experiment::run(&f, tb, config);
        match r.outcome {
            GridOutcome::Sat(model) => assert!(f.is_satisfied_by(&model), "seed {seed}"),
            other => panic!("seed {seed}: {other:?}"),
        }
    }
}

#[test]
fn batch_window_expiry_with_busy_nodes_terminates_the_run() {
    // a batch host joins, takes work, and its window expires mid-solve:
    // the paper terminates the whole run
    let f = satgen::php::php(10, 9);
    let tb = Testbed::uniform(2, 800.0, 3 << 20).with_blue_horizon(3, 30.0, 120.0);
    let config = GridConfig {
        min_split_timeout: 10.0,
        overall_timeout: 10_000.0,
        ..GridConfig::default()
    };
    let r = experiment::run(&f, tb, config);
    // either the run finished before the window closed, or it terminated
    // with ClientLost exactly at expiry — never a wrong answer
    match r.outcome {
        GridOutcome::Unsat => {}
        GridOutcome::ClientLost => assert!(r.seconds >= 140.0 && r.seconds <= 160.0),
        other => panic!("{other:?}"),
    }
}
