//! Integration test for the Figure 1 reproduction: the exact facts the
//! paper states about its worked example, checked through the full
//! public API (cnf + solver crates together).

use gridsat_cnf::{paper, Lit, Value, Var};
use gridsat_solver::{Solver, SolverConfig};

#[test]
fn the_full_figure1_walkthrough() {
    let formula = paper::fig1_formula();
    let mut s = Solver::new(&formula, SolverConfig::default());
    s.set_trace(true);

    // level 0: V14 from unit clause 9
    assert_eq!(s.var_value(Var(13)), Value::True);
    assert_eq!(s.var_decision_level(Var(13)), Some(0));

    // levels 1..=5 per the paper's script
    for d in &paper::fig1_decisions()[..5] {
        s.assume_decision(*d).unwrap();
        assert!(s.propagate_manual().is_none());
    }
    // level 1 implied ~V13 through clause 8
    assert_eq!(s.var_value(Var(12)), Value::False);
    assert_eq!(s.var_decision_level(Var(12)), Some(1));

    // level 6 decision V11 cascades to the conflict between clauses 6/7
    s.assume_decision(paper::fig1_decisions()[5]).unwrap();
    let (cref, clause_id) = s.propagate_manual().expect("conflict");
    assert!(clause_id == 6 || clause_id == 7);

    let analysis = s.analyze(cref);
    assert_eq!(analysis.uip, paper::fig1_uip());
    assert_eq!(analysis.backjump, paper::FIG1_BACKJUMP_LEVEL);
    let mut got: Vec<Lit> = analysis.learned.lits().to_vec();
    got.sort();
    let mut want: Vec<Lit> = paper::fig1_learned_clause().lits().to_vec();
    want.sort();
    assert_eq!(got, want);

    // asserting literal first, per the watch convention
    assert_eq!(analysis.learned.lits()[0], Lit::from_dimacs(-5));

    s.learn(&analysis);
    assert_eq!(s.decision_level(), 4);
    assert_eq!(s.var_value(Var(4)), Value::False, "~V5 implied at level 4");
    s.check_invariants();
}

#[test]
fn decision_antecedents_display_as_clause_zero() {
    // "we use clause 0 in this paper as antecedent for decision variables"
    let mut s = Solver::new(&paper::fig1_formula(), SolverConfig::default());
    s.assume_decision(Var(9).positive()).unwrap();
    let _ = s.propagate_manual();
    let graph = s.implication_graph();
    let v10 = graph.iter().find(|n| n.lit == Var(9).positive()).unwrap();
    assert_eq!(v10.antecedent_id, 0);
    assert!(v10.preds.is_empty());
}
